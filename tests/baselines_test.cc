// Tests for the baseline algorithms: TourTree, HeapSort, QuickSelect, PBR,
// CrowdBT, Hybrid, and HybridSPR.

#include <memory>
#include <set>

#include "baselines/crowd_bt.h"
#include "baselines/heap_sort.h"
#include "baselines/hybrid.h"
#include "baselines/pbr.h"
#include "baselines/quick_select.h"
#include "baselines/tournament_tree.h"
#include "crowd/platform.h"
#include "data/generators.h"
#include "gtest/gtest.h"
#include "metrics/ranking_metrics.h"

namespace crowdtopk::baselines {
namespace {

judgment::ComparisonOptions FastOptions() {
  judgment::ComparisonOptions options;
  options.alpha = 0.05;
  options.budget = 600;
  options.min_workload = 30;
  options.batch_size = 30;
  return options;
}

void ExpectValidTopK(const core::TopKResult& result, int64_t k, int64_t n) {
  ASSERT_EQ(result.items.size(), static_cast<size_t>(k));
  std::set<core::ItemId> unique(result.items.begin(), result.items.end());
  EXPECT_EQ(unique.size(), static_cast<size_t>(k));
  for (core::ItemId o : result.items) {
    EXPECT_GE(o, 0);
    EXPECT_LT(o, n);
  }
  EXPECT_GT(result.total_microtasks, 0);
  EXPECT_GT(result.rounds, 0);
}

// Easy dataset: every baseline must nail the exact ranked top-k.
void ExpectExactOnEasyData(core::TopKAlgorithm* algorithm) {
  auto dataset = data::MakeUniformLadder(64, 10.0, 2.0);
  crowd::CrowdPlatform platform(dataset.get(), 42);
  const core::TopKResult result = algorithm->Run(&platform, 5);
  ExpectValidTopK(result, 5, 64);
  EXPECT_EQ(result.items,
            (std::vector<core::ItemId>{63, 62, 61, 60, 59}))
      << algorithm->name();
}

TEST(TournamentTreeTest, ExactOnEasyData) {
  TournamentTree algorithm(FastOptions());
  ExpectExactOnEasyData(&algorithm);
}

TEST(HeapSortTest, ExactOnEasyData) {
  HeapSortTopK algorithm(FastOptions());
  ExpectExactOnEasyData(&algorithm);
}

TEST(QuickSelectTest, ExactOnEasyData) {
  QuickSelectTopK algorithm(FastOptions());
  ExpectExactOnEasyData(&algorithm);
}

TEST(PbrTest, ExactOnEasyData) {
  // PBR races Borda scores with binary votes; on well-separated data it must
  // still find the right set.
  auto dataset = data::MakeUniformLadder(32, 10.0, 2.0);
  crowd::CrowdPlatform platform(dataset.get(), 43);
  PbrTopK algorithm(FastOptions());
  const core::TopKResult result = algorithm.Run(&platform, 5);
  ExpectValidTopK(result, 5, 32);
  const std::set<core::ItemId> expected = {31, 30, 29, 28, 27};
  const std::set<core::ItemId> got(result.items.begin(), result.items.end());
  EXPECT_EQ(got, expected);
}

TEST(TournamentTreeTest, KEqualsOne) {
  auto dataset = data::MakeUniformLadder(33, 10.0, 2.0);
  crowd::CrowdPlatform platform(dataset.get(), 44);
  TournamentTree algorithm(FastOptions());
  const core::TopKResult result = algorithm.Run(&platform, 1);
  ASSERT_EQ(result.items.size(), 1u);
  EXPECT_EQ(result.items[0], 32);
}

TEST(HeapSortTest, KEqualsN) {
  auto dataset = data::MakeUniformLadder(8, 10.0, 2.0);
  crowd::CrowdPlatform platform(dataset.get(), 45);
  HeapSortTopK algorithm(FastOptions());
  const core::TopKResult result = algorithm.Run(&platform, 8);
  EXPECT_EQ(result.items,
            (std::vector<core::ItemId>{7, 6, 5, 4, 3, 2, 1, 0}));
}

TEST(QuickSelectTest, ValidOnNoisyData) {
  auto dataset = data::MakeUniformLadder(60, 1.0, 4.0);
  crowd::CrowdPlatform platform(dataset.get(), 46);
  QuickSelectTopK algorithm(FastOptions());
  const core::TopKResult result = algorithm.Run(&platform, 10);
  ExpectValidTopK(result, 10, 60);
}

TEST(HeapSortTest, LatencyDominatesParallelMethods) {
  // Section 5.5: HeapSort is sequential; its round count should far exceed
  // QuickSelect's on the same data.
  auto dataset = data::MakeUniformLadder(100, 5.0, 4.0);
  crowd::CrowdPlatform heap_platform(dataset.get(), 47);
  HeapSortTopK heap(FastOptions());
  const core::TopKResult heap_result = heap.Run(&heap_platform, 10);

  crowd::CrowdPlatform quick_platform(dataset.get(), 47);
  QuickSelectTopK quick(FastOptions());
  const core::TopKResult quick_result = quick.Run(&quick_platform, 10);

  EXPECT_GT(heap_result.rounds, 2 * quick_result.rounds);
}

TEST(PbrTest, CostsMoreThanConfidenceAwareMethods) {
  // Table 7's qualitative claim: PBR's binary+Hoeffding racing is by far the
  // most expensive confidence-aware method.
  auto dataset = data::MakeUniformLadder(40, 2.0, 4.0);
  crowd::CrowdPlatform pbr_platform(dataset.get(), 48);
  PbrTopK pbr(FastOptions());
  const core::TopKResult pbr_result = pbr.Run(&pbr_platform, 5);

  crowd::CrowdPlatform heap_platform(dataset.get(), 48);
  HeapSortTopK heap(FastOptions());
  const core::TopKResult heap_result = heap.Run(&heap_platform, 5);

  EXPECT_GT(pbr_result.total_microtasks, heap_result.total_microtasks);
}

TEST(CrowdBtTest, RespectsBudgetExactly) {
  auto dataset = data::MakeUniformLadder(30, 5.0, 3.0);
  crowd::CrowdPlatform platform(dataset.get(), 49);
  CrowdBt::Options options;
  options.total_budget = 5000;
  CrowdBt algorithm(options);
  const core::TopKResult result = algorithm.Run(&platform, 5);
  EXPECT_EQ(result.total_microtasks, 5000);
  ExpectValidTopK(result, 5, 30);
}

TEST(CrowdBtTest, RecoversTopKWithGenerousBudget) {
  auto dataset = data::MakeUniformLadder(20, 10.0, 3.0);
  crowd::CrowdPlatform platform(dataset.get(), 50);
  CrowdBt::Options options;
  options.total_budget = 40000;
  CrowdBt algorithm(options);
  const core::TopKResult result = algorithm.Run(&platform, 5);
  const std::set<core::ItemId> got(result.items.begin(), result.items.end());
  const std::set<core::ItemId> expected = {19, 18, 17, 16, 15};
  EXPECT_EQ(got, expected);
  EXPECT_EQ(algorithm.fitted_scores().size(), 20u);
  // Fitted scores must order the extremes correctly.
  EXPECT_GT(algorithm.fitted_scores()[19], algorithm.fitted_scores()[0]);
}

TEST(HybridTest, RespectsBudgetApproximately) {
  auto dataset = data::MakeUniformLadder(50, 5.0, 3.0);
  crowd::CrowdPlatform platform(dataset.get(), 51);
  Hybrid::Options options;
  options.total_budget = 20000;
  Hybrid algorithm(options);
  const core::TopKResult result = algorithm.Run(&platform, 5);
  EXPECT_LE(result.total_microtasks, options.total_budget);
  ASSERT_EQ(result.items.size(), 5u);
}

TEST(HybridTest, GoodNdcgWithGenerousBudget) {
  auto dataset = data::MakeUniformLadder(40, 10.0, 3.0);
  crowd::CrowdPlatform platform(dataset.get(), 52);
  Hybrid::Options options;
  options.total_budget = 30000;
  Hybrid algorithm(options);
  const core::TopKResult result = algorithm.Run(&platform, 5);
  EXPECT_GT(metrics::Ndcg(*dataset, result.items, 5), 0.8);
}

TEST(HybridSprTest, FiltersThenRanksExactlyOnEasyData) {
  auto dataset = data::MakeUniformLadder(50, 10.0, 2.0);
  crowd::CrowdPlatform platform(dataset.get(), 53);
  HybridSpr::Options options;
  options.grades_per_item = 40;
  options.spr.comparison = FastOptions();
  HybridSpr algorithm(options);
  const core::TopKResult result = algorithm.Run(&platform, 5);
  EXPECT_EQ(result.items,
            (std::vector<core::ItemId>{49, 48, 47, 46, 45}));
}

TEST(HybridSprTest, CheaperThanPlainSprOnSameData) {
  // The filter phase prunes most items with cheap grades, so the SPR phase
  // runs on a small candidate set (Fig. 14's cost argument).
  auto dataset = data::MakeUniformLadder(150, 5.0, 4.0);

  crowd::CrowdPlatform spr_platform(dataset.get(), 54);
  core::SprOptions spr_options;
  spr_options.comparison = FastOptions();
  core::Spr spr(spr_options);
  const core::TopKResult spr_result = spr.Run(&spr_platform, 10);

  crowd::CrowdPlatform hybrid_platform(dataset.get(), 54);
  HybridSpr::Options options;
  options.grades_per_item = 30;
  options.spr = spr_options;
  HybridSpr hybrid(options);
  const core::TopKResult hybrid_result = hybrid.Run(&hybrid_platform, 10);

  EXPECT_LT(hybrid_result.total_microtasks, spr_result.total_microtasks);
}

// --------------------------------------------------------- Edge cases

TEST(PbrTest, KEqualsNSelectsEveryone) {
  // Racing needs no evidence to select all N items: the set is complete and
  // free, but the internal order is then unspecified.
  auto dataset = data::MakeUniformLadder(8, 10.0, 2.0);
  crowd::CrowdPlatform platform(dataset.get(), 60);
  PbrTopK algorithm(FastOptions());
  const core::TopKResult result = algorithm.Run(&platform, 8);
  ASSERT_EQ(result.items.size(), 8u);
  std::set<core::ItemId> unique(result.items.begin(), result.items.end());
  EXPECT_EQ(unique.size(), 8u);
  EXPECT_EQ(result.total_microtasks, 0);
}

TEST(QuickSelectTest, KEqualsNSortsEverything) {
  auto dataset = data::MakeUniformLadder(7, 10.0, 2.0);
  crowd::CrowdPlatform platform(dataset.get(), 61);
  QuickSelectTopK algorithm(FastOptions());
  const core::TopKResult result = algorithm.Run(&platform, 7);
  EXPECT_EQ(result.items,
            (std::vector<core::ItemId>{6, 5, 4, 3, 2, 1, 0}));
}

TEST(TournamentTreeTest, TwoItems) {
  auto dataset = data::MakeUniformLadder(2, 10.0, 2.0);
  crowd::CrowdPlatform platform(dataset.get(), 62);
  TournamentTree algorithm(FastOptions());
  const core::TopKResult result = algorithm.Run(&platform, 2);
  EXPECT_EQ(result.items, (std::vector<core::ItemId>{1, 0}));
}

TEST(CrowdBtTest, TinyBudgetStillReturnsKItems) {
  auto dataset = data::MakeUniformLadder(12, 5.0, 2.0);
  crowd::CrowdPlatform platform(dataset.get(), 63);
  CrowdBt::Options options;
  options.total_budget = 10;  // less than one batch
  CrowdBt algorithm(options);
  const core::TopKResult result = algorithm.Run(&platform, 4);
  ASSERT_EQ(result.items.size(), 4u);
  EXPECT_EQ(result.total_microtasks, 10);
}

TEST(HybridTest, BudgetSmallerThanFilterStillWorks) {
  auto dataset = data::MakeUniformLadder(20, 5.0, 2.0);
  crowd::CrowdPlatform platform(dataset.get(), 64);
  Hybrid::Options options;
  options.total_budget = 50;  // ~1 grade per item, no ranking phase
  Hybrid algorithm(options);
  const core::TopKResult result = algorithm.Run(&platform, 5);
  ASSERT_EQ(result.items.size(), 5u);
  std::set<core::ItemId> unique(result.items.begin(), result.items.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(AllBaselinesTest, DeterministicAcrossReruns) {
  auto dataset = data::MakeUniformLadder(30, 2.0, 4.0);
  for (int which = 0; which < 4; ++which) {
    std::unique_ptr<core::TopKAlgorithm> make[2];
    for (int copy = 0; copy < 2; ++copy) {
      switch (which) {
        case 0:
          make[copy] = std::make_unique<TournamentTree>(FastOptions());
          break;
        case 1:
          make[copy] = std::make_unique<HeapSortTopK>(FastOptions());
          break;
        case 2:
          make[copy] = std::make_unique<QuickSelectTopK>(FastOptions());
          break;
        default:
          make[copy] = std::make_unique<PbrTopK>(FastOptions());
          break;
      }
    }
    crowd::CrowdPlatform a(dataset.get(), 777);
    crowd::CrowdPlatform b(dataset.get(), 777);
    const auto ra = make[0]->Run(&a, 6);
    const auto rb = make[1]->Run(&b, 6);
    EXPECT_EQ(ra.items, rb.items) << "method " << which;
    EXPECT_EQ(ra.total_microtasks, rb.total_microtasks) << "method " << which;
  }
}

TEST(AllBaselinesTest, NamesAreStable) {
  EXPECT_EQ(TournamentTree(FastOptions()).name(), "TourTree");
  EXPECT_EQ(HeapSortTopK(FastOptions()).name(), "HeapSort");
  EXPECT_EQ(QuickSelectTopK(FastOptions()).name(), "QuickSelect");
  EXPECT_EQ(PbrTopK(FastOptions()).name(), "PBR");
  EXPECT_EQ(CrowdBt(CrowdBt::Options()).name(), "CrowdBT");
  EXPECT_EQ(Hybrid(Hybrid::Options()).name(), "Hybrid");
  EXPECT_EQ(HybridSpr(HybridSpr::Options()).name(), "HybridSPR");
}

}  // namespace
}  // namespace crowdtopk::baselines
