// Tests for the SPR core: Thurstone sorting, reference selection (problem
// (2) + Algorithm 3), partitioning (Algorithm 4), the SPR driver
// (Algorithm 2), the infimum estimator (Lemmas 1/3), and tournaments.

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "core/infimum.h"
#include "core/interval_ranking.h"
#include "core/partition.h"
#include "core/select_reference.h"
#include "core/sorting.h"
#include "core/spr.h"
#include "core/tournament.h"
#include "crowd/platform.h"
#include "data/generators.h"
#include "gtest/gtest.h"
#include "metrics/ranking_metrics.h"

namespace crowdtopk::core {
namespace {

judgment::ComparisonOptions FastOptions() {
  judgment::ComparisonOptions options;
  options.alpha = 0.05;
  options.budget = 600;
  options.min_workload = 30;
  options.batch_size = 30;
  return options;
}

// -------------------------------------------------------------- Thurstone

TEST(ThurstoneTest, HalfWhenEqual) {
  EXPECT_DOUBLE_EQ(ThurstoneProbability(0.3, 0.1, 0.3, 0.1), 0.5);
}

TEST(ThurstoneTest, MonotoneInMeanGap) {
  const double p1 = ThurstoneProbability(0.2, 0.1, 0.1, 0.1);
  const double p2 = ThurstoneProbability(0.4, 0.1, 0.1, 0.1);
  EXPECT_GT(p2, p1);
  EXPECT_GT(p1, 0.5);
}

TEST(ThurstoneTest, MoreNoiseLessCertain) {
  const double tight = ThurstoneProbability(0.2, 0.05, 0.0, 0.05);
  const double loose = ThurstoneProbability(0.2, 0.5, 0.0, 0.5);
  EXPECT_GT(tight, loose);
  EXPECT_GT(loose, 0.5);
}

TEST(ThurstoneTest, ZeroVarianceDegeneratesToHardComparison) {
  EXPECT_EQ(ThurstoneProbability(0.2, 0.0, 0.1, 0.0), 1.0);
  EXPECT_EQ(ThurstoneProbability(0.1, 0.0, 0.2, 0.0), 0.0);
  EXPECT_EQ(ThurstoneProbability(0.1, 0.0, 0.1, 0.0), 0.5);
}

TEST(ThurstoneTest, Complementary) {
  EXPECT_NEAR(ThurstoneProbability(0.3, 0.2, 0.1, 0.15) +
                  ThurstoneProbability(0.1, 0.15, 0.3, 0.2),
              1.0, 1e-12);
}

// ---------------------------------------------------------------- Sorting

TEST(ConfirmSortTest, SortsEasyItemsCorrectly) {
  auto dataset = data::MakeUniformLadder(8, 10.0, 2.0);  // well separated
  crowd::CrowdPlatform platform(dataset.get(), 1);
  judgment::ComparisonCache cache(FastOptions());
  std::vector<ItemId> items = {3, 7, 0, 5, 1, 6, 2, 4};
  ConfirmSort(&items, &cache, &platform);
  EXPECT_EQ(items, (std::vector<ItemId>{7, 6, 5, 4, 3, 2, 1, 0}));
}

TEST(ConfirmSortTest, AlreadySortedCostsOnePassOnly) {
  auto dataset = data::MakeUniformLadder(6, 10.0, 2.0);
  crowd::CrowdPlatform platform(dataset.get(), 2);
  judgment::ComparisonCache cache(FastOptions());
  std::vector<ItemId> items = {5, 4, 3, 2, 1, 0};
  ConfirmSort(&items, &cache, &platform);
  const int64_t first_cost = platform.total_microtasks();
  // Second sort over the same items is fully cached.
  ConfirmSort(&items, &cache, &platform);
  EXPECT_EQ(platform.total_microtasks(), first_cost);
  EXPECT_EQ(items, (std::vector<ItemId>{5, 4, 3, 2, 1, 0}));
}

TEST(ConfirmSortTest, HandlesTinyInputs) {
  judgment::ComparisonCache cache(FastOptions());
  auto dataset = data::MakeUniformLadder(3, 10.0, 2.0);
  crowd::CrowdPlatform platform(dataset.get(), 3);
  std::vector<ItemId> empty;
  ConfirmSort(&empty, &cache, &platform);
  EXPECT_TRUE(empty.empty());
  std::vector<ItemId> one = {2};
  ConfirmSort(&one, &cache, &platform);
  EXPECT_EQ(one, (std::vector<ItemId>{2}));
  EXPECT_EQ(platform.total_microtasks(), 0);
}

TEST(InitialOrderTest, OrdersByEstimatedMeanAgainstReference) {
  auto dataset = data::MakeUniformLadder(5, 10.0, 2.0);
  crowd::CrowdPlatform platform(dataset.get(), 4);
  judgment::ComparisonCache cache(FastOptions());
  const ItemId reference = 2;
  // Fund comparisons of items 0,1,3,4 against the reference.
  for (ItemId o : {0, 1, 3, 4}) cache.Compare(o, reference, &platform);
  const std::vector<ItemId> order =
      InitialOrderByReference({0, 4, 2, 1, 3}, reference, cache);
  EXPECT_EQ(order, (std::vector<ItemId>{4, 3, 2, 1, 0}));
}

TEST(SortByReferenceTest, ReusesPartitionJudgments) {
  auto dataset = data::MakeUniformLadder(6, 10.0, 2.0);
  crowd::CrowdPlatform platform(dataset.get(), 5);
  judgment::ComparisonCache cache(FastOptions());
  const ItemId reference = 0;
  for (ItemId o = 1; o < 6; ++o) cache.Compare(o, reference, &platform);
  const std::vector<ItemId> sorted =
      SortByReference({1, 2, 3, 4, 5}, reference, &cache, &platform);
  EXPECT_EQ(sorted, (std::vector<ItemId>{5, 4, 3, 2, 1}));
}

// ----------------------------------------------------- Reference planning

TEST(PlanTest, BubbleMedianCostMatchesAppendixC) {
  // C(m) = sum_{i=1}^{ceil(m/2)} (m - i).
  EXPECT_EQ(BubbleMedianCost(1), 0);
  EXPECT_EQ(BubbleMedianCost(3), 2 + 1);
  EXPECT_EQ(BubbleMedianCost(5), 4 + 3 + 2);
  EXPECT_EQ(BubbleMedianCost(7), 6 + 5 + 4 + 3);
  // And never exceeds the closed-form bound (3m^2 + m - 2) / 8.
  for (int64_t m = 1; m <= 31; m += 2) {
    EXPECT_LE(BubbleMedianCost(m), (3 * m * m + m - 2 + 7) / 8);
  }
}

TEST(PlanTest, GroupMaxProbabilityEquation1) {
  // Pr{r >= o*_j | x} = 1 - (1 - j/N)^x.
  EXPECT_NEAR(GroupMaxReachesTopJ(100, 10, 1), 0.1, 1e-12);
  EXPECT_NEAR(GroupMaxReachesTopJ(100, 10, 10), 1.0 - std::pow(0.9, 10),
              1e-12);
  EXPECT_EQ(GroupMaxReachesTopJ(100, 0, 5), 0.0);
  EXPECT_EQ(GroupMaxReachesTopJ(100, 100, 5), 1.0);
}

TEST(PlanTest, SweetSpotProbabilityIncreasesWithM) {
  // With x tuned so p < 1/2 < q, more groups concentrate the median
  // (Lemma 2's argument).
  const int64_t n = 1000, k = 10;
  const double c = 2.0;
  const int64_t x = 150;  // makes q ~ 0.95, p ~ 0.74... pick x = 60
  const double p3 = MedianInSweetSpotProbability(n, k, c, 60, 3);
  const double p11 = MedianInSweetSpotProbability(n, k, c, 60, 11);
  EXPECT_GT(p11, p3);
  (void)x;
}

TEST(PlanTest, PlanRespectsBudget) {
  for (int64_t n : {10, 100, 1225}) {
    const ReferenceSelectionPlan plan = PlanReferenceSelection(n, 10, 1.5, n);
    EXPECT_GE(plan.x, 1);
    EXPECT_GE(plan.m, 1);
    EXPECT_EQ(plan.m % 2, 1);
    EXPECT_LE(plan.m * (plan.x - 1) + BubbleMedianCost(plan.m), n);
    EXPECT_GE(plan.success_probability, 0.0);
    EXPECT_LE(plan.success_probability, 1.0);
  }
}

TEST(PlanTest, LargerBudgetNeverHurts) {
  const ReferenceSelectionPlan small = PlanReferenceSelection(500, 10, 1.5, 100);
  const ReferenceSelectionPlan large = PlanReferenceSelection(500, 10, 1.5, 500);
  EXPECT_GE(large.success_probability, small.success_probability - 1e-12);
}

TEST(PlanTest, ReasonableSuccessProbabilityAtPaperScale) {
  // At IMDb scale with the default sweet spot, the plan should place the
  // median in the sweet spot with decent probability.
  const ReferenceSelectionPlan plan =
      PlanReferenceSelection(1225, 10, 1.5, 1225);
  EXPECT_GT(plan.success_probability, 0.3);
}

// ---------------------------------------------------- Reference selection

TEST(SelectReferenceTest, SingleItem) {
  auto dataset = data::MakeUniformLadder(1, 1.0, 0.1);
  crowd::CrowdPlatform platform(dataset.get(), 6);
  judgment::ComparisonCache cache(FastOptions());
  EXPECT_EQ(SelectReference({7}, 1, 1.5, 10, &cache, &platform), 7);
  EXPECT_EQ(platform.total_microtasks(), 0);
}

TEST(SelectReferenceTest, LandsNearSweetSpotOnEasyData) {
  // Well-separated scores: comparisons are nearly exact, so the reference
  // should land in (or near) the sweet spot most of the time.
  auto dataset = data::MakeUniformLadder(200, 10.0, 3.0);
  const int64_t k = 10;
  const double c = 2.0;
  int in_or_above_sweet_spot = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    crowd::CrowdPlatform platform(dataset.get(), 100 + t);
    judgment::ComparisonCache cache(FastOptions());
    std::vector<ItemId> items(200);
    std::iota(items.begin(), items.end(), 0);
    const ItemId reference =
        SelectReference(items, k, c, 200, &cache, &platform);
    const int64_t rank = dataset->TrueRank(reference);
    // Generous window: the guarantee is probabilistic.
    if (rank >= 2 && rank <= 4 * k) ++in_or_above_sweet_spot;
  }
  EXPECT_GE(in_or_above_sweet_spot, trials * 3 / 5);
}

// -------------------------------------------------------------- Tournament

TEST(TournamentTest, FindsMaxOnEasyData) {
  auto dataset = data::MakeUniformLadder(16, 10.0, 2.0);
  crowd::CrowdPlatform platform(dataset.get(), 7);
  judgment::ComparisonCache cache(FastOptions());
  std::vector<ItemId> items(16);
  std::iota(items.begin(), items.end(), 0);
  platform.rng()->Shuffle(&items);
  const TournamentRecord record =
      TournamentMax(items, &cache, &platform, true);
  EXPECT_EQ(record.winner, 15);
  EXPECT_EQ(record.matches.size(), 15u);  // n - 1 matches
  EXPECT_GT(record.rounds, 0);
  EXPECT_EQ(platform.rounds(), record.rounds);
}

TEST(TournamentTest, OddBracketGetsBye) {
  auto dataset = data::MakeUniformLadder(5, 10.0, 2.0);
  crowd::CrowdPlatform platform(dataset.get(), 8);
  judgment::ComparisonCache cache(FastOptions());
  const TournamentRecord record =
      TournamentMax({0, 1, 2, 3, 4}, &cache, &platform, true);
  EXPECT_EQ(record.winner, 4);
  EXPECT_EQ(record.matches.size(), 4u);
}

TEST(TournamentTest, SingleItemIsFree) {
  auto dataset = data::MakeUniformLadder(2, 10.0, 2.0);
  crowd::CrowdPlatform platform(dataset.get(), 9);
  judgment::ComparisonCache cache(FastOptions());
  const TournamentRecord record = TournamentMax({1}, &cache, &platform, true);
  EXPECT_EQ(record.winner, 1);
  EXPECT_EQ(record.rounds, 0);
  EXPECT_EQ(platform.total_microtasks(), 0);
}

TEST(TournamentTest, UnchargedModeLeavesPlatformRoundsAlone) {
  auto dataset = data::MakeUniformLadder(8, 10.0, 2.0);
  crowd::CrowdPlatform platform(dataset.get(), 10);
  judgment::ComparisonCache cache(FastOptions());
  std::vector<ItemId> items = {0, 1, 2, 3, 4, 5, 6, 7};
  const TournamentRecord record =
      TournamentMax(items, &cache, &platform, false);
  EXPECT_GT(record.rounds, 0);
  EXPECT_EQ(platform.rounds(), 0);
  EXPECT_GT(platform.total_microtasks(), 0);
}

// ---------------------------------------------------------------- Partition

TEST(PartitionTest, SeparatesWinnersAndLosersOnEasyData) {
  auto dataset = data::MakeUniformLadder(30, 10.0, 2.0);
  crowd::CrowdPlatform platform(dataset.get(), 11);
  judgment::ComparisonCache cache(FastOptions());
  std::vector<ItemId> items(30);
  std::iota(items.begin(), items.end(), 0);
  const ItemId reference = 20;  // true rank 10
  const PartitionResult result =
      Partition(items, 10, reference, 0, &cache, &platform);
  EXPECT_EQ(result.reference, reference);
  EXPECT_EQ(result.reference_changes, 0);
  // Winners should be exactly the items better than 20: ids 21..29, plus the
  // reference itself is NOT added (9 winners < k = 10 -> it is added).
  std::set<ItemId> winner_set(result.winners.begin(), result.winners.end());
  for (ItemId o = 21; o < 30; ++o) EXPECT_TRUE(winner_set.count(o)) << o;
  EXPECT_TRUE(winner_set.count(reference));  // line 13 add-back
  EXPECT_EQ(result.winners.size(), 10u);
  EXPECT_TRUE(result.ties.empty());
  EXPECT_EQ(result.losers.size(), 20u);
}

TEST(PartitionTest, AllItemsAccountedForExactlyOnce) {
  auto dataset = data::MakeUniformLadder(40, 2.0, 4.0);  // noisier
  crowd::CrowdPlatform platform(dataset.get(), 12);
  judgment::ComparisonCache cache(FastOptions());
  std::vector<ItemId> items(40);
  std::iota(items.begin(), items.end(), 0);
  const PartitionResult result =
      Partition(items, 5, 30, 2, &cache, &platform);
  std::vector<ItemId> all;
  all.insert(all.end(), result.winners.begin(), result.winners.end());
  all.insert(all.end(), result.ties.begin(), result.ties.end());
  all.insert(all.end(), result.losers.begin(), result.losers.end());
  // The final reference appears in exactly one bucket (winners if < k
  // confirmed, else it is accounted as itself).
  std::sort(all.begin(), all.end());
  const bool reference_in_winners =
      std::find(result.winners.begin(), result.winners.end(),
                result.reference) != result.winners.end();
  if (!reference_in_winners) {
    all.push_back(result.reference);
    std::sort(all.begin(), all.end());
  }
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
  EXPECT_EQ(all.size(), 40u);
}

TEST(PartitionTest, BudgetExhaustionYieldsTies) {
  // Indistinguishable items: every comparison exhausts the budget.
  auto dataset = data::MakeUniformLadder(6, 0.0001, 5.0);
  judgment::ComparisonOptions options = FastOptions();
  options.budget = 60;
  crowd::CrowdPlatform platform(dataset.get(), 13);
  judgment::ComparisonCache cache(options);
  std::vector<ItemId> items = {0, 1, 2, 3, 4, 5};
  const PartitionResult result =
      Partition(items, 2, 0, 0, &cache, &platform);
  EXPECT_GE(result.ties.size(), 3u);
  // Every tie cost exactly the budget.
  for (ItemId o : result.ties) {
    EXPECT_EQ(cache.Workload(o, 0), 60);
  }
}

TEST(PartitionTest, ReferenceChangeMovesTowardOkStar) {
  // Reference far below the sweet spot, with enough judgment noise that
  // near-reference comparisons stay pending while far items resolve -- the
  // situation where changing the reference (lines 9-12) fires and helps.
  auto dataset = data::MakeUniformLadder(60, 1.0, 10.0);
  crowd::CrowdPlatform platform(dataset.get(), 14);
  judgment::ComparisonCache cache(FastOptions());
  std::vector<ItemId> items(60);
  std::iota(items.begin(), items.end(), 0);
  const ItemId initial = 10;  // true rank 50: terrible reference
  const PartitionResult result =
      Partition(items, 5, initial, 4, &cache, &platform);
  EXPECT_GT(result.reference_changes, 0);
  EXPECT_LT(dataset->TrueRank(result.reference), dataset->TrueRank(initial));
}

TEST(PartitionTest, ChangeCountCapRespected) {
  auto dataset = data::MakeUniformLadder(60, 1.0, 10.0);
  crowd::CrowdPlatform platform(dataset.get(), 15);
  judgment::ComparisonCache cache(FastOptions());
  std::vector<ItemId> items(60);
  std::iota(items.begin(), items.end(), 0);
  const PartitionResult capped =
      Partition(items, 5, 10, 1, &cache, &platform);
  EXPECT_EQ(capped.reference_changes, 1);
  // And disabling changes keeps the initial reference.
  crowd::CrowdPlatform platform2(dataset.get(), 15);
  judgment::ComparisonCache cache2(FastOptions());
  const PartitionResult disabled =
      Partition(items, 5, 10, 0, &cache2, &platform2);
  EXPECT_EQ(disabled.reference_changes, 0);
  EXPECT_EQ(disabled.reference, 10);
}

// -------------------------------------------------------------------- SPR

TEST(SprTest, FindsExactTopKOnEasyData) {
  auto dataset = data::MakeUniformLadder(100, 10.0, 3.0);
  crowd::CrowdPlatform platform(dataset.get(), 16);
  SprOptions options;
  options.comparison = FastOptions();
  Spr spr(options);
  const TopKResult result = spr.Run(&platform, 5);
  EXPECT_EQ(result.items,
            (std::vector<ItemId>{99, 98, 97, 96, 95}));
  EXPECT_EQ(result.total_microtasks, platform.total_microtasks());
  EXPECT_GT(result.rounds, 0);
}

TEST(SprTest, KEqualsOneWorks) {
  auto dataset = data::MakeUniformLadder(50, 10.0, 3.0);
  crowd::CrowdPlatform platform(dataset.get(), 17);
  SprOptions options;
  options.comparison = FastOptions();
  Spr spr(options);
  const TopKResult result = spr.Run(&platform, 1);
  ASSERT_EQ(result.items.size(), 1u);
  EXPECT_EQ(result.items[0], 49);
}

TEST(SprTest, KEqualsNReturnsFullRanking) {
  auto dataset = data::MakeUniformLadder(8, 10.0, 2.0);
  crowd::CrowdPlatform platform(dataset.get(), 18);
  SprOptions options;
  options.comparison = FastOptions();
  Spr spr(options);
  const TopKResult result = spr.Run(&platform, 8);
  EXPECT_EQ(result.items,
            (std::vector<ItemId>{7, 6, 5, 4, 3, 2, 1, 0}));
}

TEST(SprTest, ReturnsKDistinctValidItems) {
  auto dataset = data::MakeUniformLadder(80, 1.0, 3.0);  // hard
  crowd::CrowdPlatform platform(dataset.get(), 19);
  SprOptions options;
  options.comparison = FastOptions();
  options.comparison.budget = 120;
  Spr spr(options);
  const TopKResult result = spr.Run(&platform, 10);
  ASSERT_EQ(result.items.size(), 10u);
  std::set<ItemId> unique(result.items.begin(), result.items.end());
  EXPECT_EQ(unique.size(), 10u);
  for (ItemId o : result.items) {
    EXPECT_GE(o, 0);
    EXPECT_LT(o, 80);
  }
}

TEST(SprTest, HighConfidenceGivesHighNdcgOnModerateData) {
  auto dataset = data::MakeUniformLadder(120, 5.0, 4.0);
  double total_ndcg = 0.0;
  const int runs = 5;
  for (int r = 0; r < runs; ++r) {
    crowd::CrowdPlatform platform(dataset.get(), 300 + r);
    SprOptions options;
    options.comparison = FastOptions();
    options.comparison.alpha = 0.02;
    Spr spr(options);
    const TopKResult result = spr.Run(&platform, 10);
    total_ndcg += metrics::Ndcg(*dataset, result.items, 10);
  }
  EXPECT_GT(total_ndcg / runs, 0.9);
}

TEST(SprTest, RecursionPathProducesKItems) {
  // Force the recursion: pick a terrible initial situation by using few
  // items and a tiny budget so ties + winners < k regularly.
  auto dataset = data::MakeUniformLadder(30, 0.5, 5.0);
  crowd::CrowdPlatform platform(dataset.get(), 20);
  SprOptions options;
  options.comparison = FastOptions();
  options.comparison.budget = 60;
  Spr spr(options);
  const TopKResult result = spr.Run(&platform, 12);
  ASSERT_EQ(result.items.size(), 12u);
  std::set<ItemId> unique(result.items.begin(), result.items.end());
  EXPECT_EQ(unique.size(), 12u);
}

TEST(SprTest, PrecisionLowerBoundFormula) {
  EXPECT_DOUBLE_EQ(SprPrecisionLowerBound(0.02, 1.5), 0.98 / 1.5);
  EXPECT_DOUBLE_EQ(SprPrecisionLowerBound(0.0, 1.0), 1.0);
}

// ------------------------------------------------------- Interval ranking

TEST(IntervalRankingTest, CertifiesWellSeparatedCandidates) {
  auto dataset = data::MakeUniformLadder(12, 10.0, 2.0);
  crowd::CrowdPlatform platform(dataset.get(), 61);
  judgment::ComparisonCache cache(FastOptions());
  const ItemId reference = 0;
  const std::vector<ItemId> candidates = {5, 9, 7, 11, 3};
  const IntervalRankingResult result = RefineByIntervals(
      candidates, reference, /*refinement_budget=*/20000, &cache, &platform);
  EXPECT_TRUE(result.fully_certified);
  EXPECT_EQ(result.ranked, (std::vector<ItemId>{11, 9, 7, 5, 3}));
  EXPECT_EQ(result.certified_adjacent_pairs, 4);
}

TEST(IntervalRankingTest, ZeroBudgetStillRanksByMeans) {
  auto dataset = data::MakeUniformLadder(10, 10.0, 2.0);
  crowd::CrowdPlatform platform(dataset.get(), 62);
  judgment::ComparisonCache cache(FastOptions());
  // Pre-fund comparisons against the reference.
  for (ItemId o : {2, 4, 6, 8}) cache.Compare(o, 0, &platform);
  const int64_t funded = platform.total_microtasks();
  const IntervalRankingResult result =
      RefineByIntervals({2, 4, 6, 8}, 0, /*refinement_budget=*/0, &cache,
                        &platform);
  EXPECT_EQ(result.ranked, (std::vector<ItemId>{8, 6, 4, 2}));
  EXPECT_EQ(result.refinement_cost, 0);
  EXPECT_EQ(platform.total_microtasks(), funded);
}

TEST(IntervalRankingTest, RefinementCertifiesWhatSortingCannot) {
  // Two candidates whose gap is too small for their default workloads but
  // resolvable with refinement: buying more reference judgments separates
  // their intervals without any direct comparison.
  auto dataset = data::MakeUniformLadder(30, 1.0, 4.0);
  judgment::ComparisonOptions options = FastOptions();
  options.budget = 60;  // partition-style funding stops early
  crowd::CrowdPlatform platform(dataset.get(), 63);
  judgment::ComparisonCache cache(options);
  const ItemId reference = 0;
  const std::vector<ItemId> candidates = {20, 24};
  const IntervalRankingResult cheap = RefineByIntervals(
      candidates, reference, /*refinement_budget=*/0, &cache, &platform);
  const IntervalRankingResult refined = RefineByIntervals(
      candidates, reference, /*refinement_budget=*/40000, &cache, &platform);
  EXPECT_GE(refined.certified_adjacent_pairs,
            cheap.certified_adjacent_pairs);
  EXPECT_TRUE(refined.fully_certified);
  EXPECT_EQ(refined.ranked, (std::vector<ItemId>{24, 20}));
  EXPECT_GT(refined.refinement_cost, 0);
}

TEST(IntervalRankingTest, BudgetCapRespected) {
  auto dataset = data::MakeUniformLadder(6, 0.01, 5.0);  // unresolvable
  crowd::CrowdPlatform platform(dataset.get(), 64);
  judgment::ComparisonCache cache(FastOptions());
  const IntervalRankingResult result = RefineByIntervals(
      {1, 2, 3}, 0, /*refinement_budget=*/500, &cache, &platform);
  EXPECT_FALSE(result.fully_certified);
  // Cold starts are charged to the refinement cost; the extra refinement
  // purchases stop at the budget.
  EXPECT_LE(result.refinement_cost, 500 + 3 * 30);
  EXPECT_EQ(result.ranked.size(), 3u);
}

TEST(IntervalRankingTest, EmptyAndSingleCandidate) {
  auto dataset = data::MakeUniformLadder(4, 10.0, 1.0);
  crowd::CrowdPlatform platform(dataset.get(), 65);
  judgment::ComparisonCache cache(FastOptions());
  const IntervalRankingResult empty =
      RefineByIntervals({}, 0, 100, &cache, &platform);
  EXPECT_TRUE(empty.fully_certified);
  EXPECT_TRUE(empty.ranked.empty());
  const IntervalRankingResult single =
      RefineByIntervals({2}, 0, 100, &cache, &platform);
  EXPECT_TRUE(single.fully_certified);
  EXPECT_EQ(single.ranked, (std::vector<ItemId>{2}));
}

// ---------------------------------------------------------------- Infimum

TEST(InfimumTest, PositiveAndBelowNaiveAllPairs) {
  auto dataset = data::MakeUniformLadder(30, 5.0, 4.0);
  judgment::ComparisonOptions options = FastOptions();
  const InfimumEstimate estimate =
      EstimateInfimum(*dataset, 5, options, 21, 2);
  EXPECT_GT(estimate.tmc, 0.0);
  // At minimum: (N - k) + (k - 1) comparisons of >= I microtasks each.
  EXPECT_GE(estimate.tmc, (30 - 5 + 5 - 1) * 30.0);
  EXPECT_GT(estimate.rounds, 0.0);
}

TEST(InfimumTest, InfimumBelowSprCost) {
  auto dataset = data::MakeUniformLadder(60, 5.0, 4.0);
  judgment::ComparisonOptions options = FastOptions();
  const InfimumEstimate inf = EstimateInfimum(*dataset, 5, options, 22, 2);
  crowd::CrowdPlatform platform(dataset.get(), 23);
  SprOptions spr_options;
  spr_options.comparison = options;
  Spr spr(spr_options);
  const TopKResult result = spr.Run(&platform, 5);
  EXPECT_LT(inf.tmc, static_cast<double>(result.total_microtasks));
}

TEST(InfimumTest, Lemma4MonotoneInEll) {
  // TMC_inf(o*_ell) increases as the reference drops further below o*_k.
  // Noise large enough that near-reference comparisons genuinely cost more
  // than the cold-start workload (adjacent mean/sd = 0.125).
  auto dataset = data::MakeUniformLadder(100, 1.0, 8.0);
  judgment::ComparisonOptions options = FastOptions();
  const double at_k =
      EstimateInfimumWithReference(*dataset, 5, 5, options, 24, 3).tmc;
  const double at_3k =
      EstimateInfimumWithReference(*dataset, 5, 15, options, 24, 3).tmc;
  const double at_6k =
      EstimateInfimumWithReference(*dataset, 5, 30, options, 24, 3).tmc;
  EXPECT_LT(at_k, at_3k);
  EXPECT_LT(at_3k, at_6k);
}

}  // namespace
}  // namespace crowdtopk::core
