// Tests for the statistical-guarantee verification harness (src/verify):
// clean-crowd contracts pass, a deliberately broken crowd is caught with a
// decisive FAIL, reports are bit-identical across engine worker counts, and
// the telemetry serialisation follows the documented schema.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exec/run_engine.h"
#include "gtest/gtest.h"
#include "verify/guarantee.h"

namespace crowdtopk::verify {
namespace {

exec::RunEngine MakeEngine(int64_t jobs) {
  exec::RunEngine::Options options;
  options.jobs = jobs;
  return exec::RunEngine(options);
}

VerifyOptions SmallOptions() {
  VerifyOptions options;
  options.max_trials = 60;
  options.block_trials = 20;
  return options;
}

TEST(VerifyComparisonTest, CleanCrowdHoldsTheContract) {
  CompCheckSpec spec;
  spec.label = "student_clean";
  spec.alpha = 0.1;
  exec::RunEngine engine = MakeEngine(1);
  const GuaranteeReport report =
      VerifyComparisonGuarantee(spec, SmallOptions(), &engine, 7);
  EXPECT_EQ(report.kind, "comp");
  EXPECT_EQ(report.contract, spec.alpha);
  EXPECT_GT(report.trials, 0);
  EXPECT_LE(report.trials, 60);
  EXPECT_EQ(report.verdict, Verdict::kPass);
  EXPECT_LE(report.wilson_lo, report.error_rate);
  EXPECT_GE(report.wilson_hi, report.error_rate);
  // COMP pays at least the cold-start workload I per comparison.
  EXPECT_GE(report.mean_workload, 30.0);
}

// A fully adversarial crowd flips every judgment: the empirical error rate
// goes to ~1, the Wilson lower bound clears the contract fast, and the
// sequential rule stops with a decisive FAIL before max_trials.
TEST(VerifyComparisonTest, AdversarialCrowdFailsDecisively) {
  CompCheckSpec spec;
  spec.label = "student_adversary";
  spec.alpha = 0.05;
  spec.faults.adversary_fraction = 1.0;
  VerifyOptions options = SmallOptions();
  options.max_trials = 200;
  exec::RunEngine engine = MakeEngine(1);
  const GuaranteeReport report =
      VerifyComparisonGuarantee(spec, options, &engine, 7);
  EXPECT_EQ(report.verdict, Verdict::kFail);
  EXPECT_TRUE(report.decisive);
  EXPECT_LT(report.trials, 200);  // early stop fired
  EXPECT_GT(report.wilson_lo, spec.alpha);
  EXPECT_GT(report.error_rate, 0.5);
}

TEST(VerifySprTest, SeparableLadderHoldsTheBound) {
  SprCheckSpec spec;
  spec.label = "spr_clean";
  spec.n = 12;
  spec.k = 3;
  exec::RunEngine engine = MakeEngine(1);
  const GuaranteeReport report =
      VerifySprGuarantee(spec, SmallOptions(), &engine, 9);
  EXPECT_EQ(report.kind, "spr");
  // Contract: error <= 1 - (1 - alpha) / c.
  EXPECT_NEAR(report.contract, 1.0 - (1.0 - spec.alpha) / spec.sweet_spot_c,
              1e-12);
  // Each run contributes k Bernoulli slots.
  EXPECT_EQ(report.trials % spec.k, 0);
  EXPECT_EQ(report.verdict, Verdict::kPass);
}

// The harness's own determinism contract: the full report — counts, band,
// stopping point, verdict — is bit-identical for jobs=1 and jobs=8, faults
// included.
TEST(VerifyHarnessTest, ReportBitIdenticalAcrossJobs) {
  CompCheckSpec spec;
  spec.label = "student_spam";
  spec.alpha = 0.1;
  spec.faults.spammer_fraction = 0.3;
  spec.faults.duplicate_fraction = 0.1;
  GuaranteeReport reports[2];
  const int64_t jobs[] = {1, 8};
  for (int v = 0; v < 2; ++v) {
    exec::RunEngine engine = MakeEngine(jobs[v]);
    reports[v] = VerifyComparisonGuarantee(spec, SmallOptions(), &engine, 41);
  }
  EXPECT_EQ(reports[0].trials, reports[1].trials);
  EXPECT_EQ(reports[0].errors, reports[1].errors);
  EXPECT_EQ(reports[0].ties, reports[1].ties);
  EXPECT_EQ(reports[0].error_rate, reports[1].error_rate);
  EXPECT_EQ(reports[0].wilson_lo, reports[1].wilson_lo);
  EXPECT_EQ(reports[0].wilson_hi, reports[1].wilson_hi);
  EXPECT_EQ(reports[0].mean_workload, reports[1].mean_workload);
  EXPECT_EQ(reports[0].decisive, reports[1].decisive);
  EXPECT_EQ(reports[0].verdict, reports[1].verdict);
}

TEST(VerifyReportTest, EventsFollowTheDocumentedSchema) {
  GuaranteeReport report;
  report.label = "stein/a0.05";  // '/' must be sanitised in phase names
  report.kind = "comp";
  report.alpha = 0.05;
  report.contract = 0.05;
  report.trials = 100;
  report.errors = 3;
  const std::vector<telemetry::TraceEvent> events = ReportEvents({report});
  ASSERT_FALSE(events.empty());
  int counters = 0;
  for (const telemetry::TraceEvent& event : events) {
    if (event.kind != telemetry::EventKind::kCounter) continue;
    ++counters;
    EXPECT_EQ(event.phase, "verify/comp_stein_a0.05");
    if (event.name == "trials") {
      EXPECT_EQ(event.value, 100.0);
    } else if (event.name == "errors") {
      EXPECT_EQ(event.value, 3.0);
    } else if (event.name == "pass") {
      EXPECT_EQ(event.value, 1.0);
    }
  }
  EXPECT_EQ(counters, 11);  // one counter per report field
}

TEST(VerifyReportTest, JsonlRoundTripsThroughTheExporter) {
  GuaranteeReport report;
  report.label = "hoeffding_a0.1";
  report.kind = "comp";
  report.alpha = 0.1;
  report.contract = 0.1;
  report.trials = 50;
  const std::string path = ::testing::TempDir() + "/verify_report.jsonl";
  ASSERT_TRUE(WriteReportJsonl({report}, path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  bool saw_trials = false;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    saw_trials |= line.find("\"name\":\"trials\"") != std::string::npos &&
                  line.find("verify/comp_hoeffding_a0.1") != std::string::npos;
  }
  EXPECT_GT(lines, 0);
  EXPECT_TRUE(saw_trials);
  std::remove(path.c_str());
}

TEST(VerdictTest, Names) {
  EXPECT_STREQ(VerdictName(Verdict::kPass), "PASS");
  EXPECT_STREQ(VerdictName(Verdict::kFail), "FAIL");
}

}  // namespace
}  // namespace crowdtopk::verify
