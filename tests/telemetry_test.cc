// Tests for the telemetry subsystem: recorder semantics (event ordering,
// phase nesting, purchase tagging), exporter round-trips, trace aggregation,
// and the end-to-end invariant the bench harness relies on — a traced SPR
// run's per-phase TMC/round totals equal the CrowdPlatform aggregates.

#include <set>
#include <sstream>
#include <vector>

#include "baselines/heap_sort.h"
#include "baselines/pbr.h"
#include "baselines/quick_select.h"
#include "baselines/tournament_tree.h"
#include "core/spr.h"
#include "crowd/platform.h"
#include "data/generators.h"
#include "gtest/gtest.h"
#include "metrics/trace_aggregate.h"
#include "telemetry/export.h"
#include "telemetry/recorder.h"

namespace crowdtopk {
namespace {

using telemetry::EventKind;
using telemetry::PhaseScope;
using telemetry::PurchaseKind;
using telemetry::TraceEvent;
using telemetry::TraceRecorder;

TEST(TraceRecorderTest, SequencesAreDenseAndOrdered) {
  TraceRecorder recorder;
  recorder.BeginPhase("a");
  recorder.RecordPurchase(PurchaseKind::kPreference, 1, 2, 30);
  recorder.RecordRounds(1);
  recorder.RecordCounter("c", 2.5);
  recorder.EndPhase();
  const auto& events = recorder.events();
  ASSERT_EQ(events.size(), 5u);
  for (size_t at = 0; at < events.size(); ++at) {
    EXPECT_EQ(events[at].sequence, static_cast<int64_t>(at));
  }
  EXPECT_EQ(events[0].kind, EventKind::kPhaseBegin);
  EXPECT_EQ(events[1].kind, EventKind::kPurchase);
  EXPECT_EQ(events[2].kind, EventKind::kRound);
  EXPECT_EQ(events[3].kind, EventKind::kCounter);
  EXPECT_EQ(events[4].kind, EventKind::kPhaseEnd);
}

TEST(TraceRecorderTest, PhaseNestingBuildsSlashPaths) {
  TraceRecorder recorder;
  EXPECT_EQ(recorder.phase_path(), "");
  recorder.BeginPhase("spr");
  recorder.BeginPhase("select");
  EXPECT_EQ(recorder.phase_path(), "spr/select");
  EXPECT_EQ(recorder.phase_depth(), 2);
  recorder.RecordPurchase(PurchaseKind::kBinary, 0, 1, 5);
  recorder.EndPhase();
  EXPECT_EQ(recorder.phase_path(), "spr");
  recorder.BeginPhase("partition");
  recorder.RecordRounds(3);
  recorder.EndPhase();
  recorder.EndPhase();
  EXPECT_EQ(recorder.phase_path(), "");
  EXPECT_EQ(recorder.phase_depth(), 0);

  const auto& events = recorder.events();
  // Purchase is attributed to the leaf path active when it fired.
  EXPECT_EQ(events[2].phase, "spr/select");
  // End events carry the path of the phase being closed.
  EXPECT_EQ(events[3].phase, "spr/select");
  EXPECT_EQ(events[5].phase, "spr/partition");
  EXPECT_EQ(events.back().phase, "spr");
}

TEST(TraceRecorderTest, PhaseScopeIsRaiiAndNullSafe) {
  TraceRecorder recorder;
  {
    PhaseScope outer(&recorder, "outer");
    PhaseScope inner(&recorder, "inner");
    EXPECT_EQ(recorder.phase_path(), "outer/inner");
  }
  EXPECT_EQ(recorder.phase_path(), "");
  // A null recorder must be a no-op, not a crash.
  PhaseScope ignored(nullptr, "anything");
}

TEST(TraceRecorderTest, TotalsTrackPurchasesAndRounds) {
  TraceRecorder recorder;
  recorder.RecordPurchase(PurchaseKind::kPreference, 0, 1, 30);
  recorder.RecordPurchase(PurchaseKind::kGraded, 4, -1, 7);
  recorder.RecordRounds(2);
  recorder.RecordRounds(1);
  EXPECT_EQ(recorder.total_microtasks(), 37);
  EXPECT_EQ(recorder.total_rounds(), 3);
  recorder.Clear();
  EXPECT_EQ(recorder.total_microtasks(), 0);
  EXPECT_EQ(recorder.total_rounds(), 0);
  EXPECT_TRUE(recorder.events().empty());
}

TEST(TraceRecorderTest, PurchaseIterationTagging) {
  TraceRecorder recorder;
  recorder.RecordPurchase(PurchaseKind::kPreference, 0, 1, 1);
  recorder.SetPurchaseIteration(4);
  recorder.RecordPurchase(PurchaseKind::kPreference, 0, 1, 1);
  recorder.SetPurchaseIteration(-1);
  recorder.RecordPurchase(PurchaseKind::kPreference, 0, 1, 1);
  EXPECT_EQ(recorder.events()[0].iteration, -1);
  EXPECT_EQ(recorder.events()[1].iteration, 4);
  EXPECT_EQ(recorder.events()[2].iteration, -1);
}

TEST(ExportTest, JsonlRoundTripPreservesEveryField) {
  TraceRecorder recorder;
  recorder.BeginPhase("spr");
  recorder.BeginPhase("select");
  recorder.SetPurchaseIteration(2);
  recorder.RecordPurchase(PurchaseKind::kPreference, 17, 23, 30);
  recorder.SetPurchaseIteration(-1);
  recorder.RecordPurchase(PurchaseKind::kBinary, 3, 5, 60);
  recorder.RecordPurchase(PurchaseKind::kGraded, 7, -1, 4);
  recorder.RecordRounds(5);
  recorder.RecordCounter("reference_changes", 2.0);
  recorder.RecordCounter("fractional", -0.125);
  recorder.EndPhase();
  recorder.EndPhase();

  std::stringstream stream;
  telemetry::WriteJsonl(recorder.events(), &stream);
  const auto parsed = telemetry::ReadJsonl(&stream);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, recorder.events());
}

TEST(ExportTest, EscapesSpecialCharactersInCounterNames) {
  TraceRecorder recorder;
  recorder.RecordCounter("with \"quotes\" and \\slash\\ and\nnewline", 1.0);
  std::stringstream stream;
  telemetry::WriteJsonl(recorder.events(), &stream);
  // Still one line per event despite the embedded newline.
  std::string line;
  int64_t lines = 0;
  while (std::getline(stream, line)) ++lines;
  EXPECT_EQ(lines, 1);
  stream.clear();
  stream.seekg(0);
  const auto parsed = telemetry::ReadJsonl(&stream);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, recorder.events());
}

TEST(ExportTest, MalformedLinesAreRejected) {
  std::stringstream stream("{\"seq\":0,\"kind\":\"nonsense\",\"phase\":\"\"}");
  EXPECT_FALSE(telemetry::ReadJsonl(&stream).ok());
  std::stringstream missing("{\"kind\":\"round\",\"phase\":\"\",\"n\":1}");
  EXPECT_FALSE(telemetry::ReadJsonl(&missing).ok());
}

TEST(ExportTest, FileRoundTrip) {
  TraceRecorder recorder;
  recorder.BeginPhase("p");
  recorder.RecordPurchase(PurchaseKind::kPreference, 0, 1, 3);
  recorder.EndPhase();
  const std::string path =
      ::testing::TempDir() + "/telemetry_file_round_trip.jsonl";
  ASSERT_TRUE(telemetry::WriteJsonlFile(recorder.events(), path).ok());
  const auto parsed = telemetry::ReadJsonlFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, recorder.events());
}

TEST(AggregateTest, LeafAndRollupAttribution) {
  TraceRecorder recorder;
  recorder.BeginPhase("spr");
  recorder.BeginPhase("select");
  recorder.RecordPurchase(PurchaseKind::kPreference, 0, 1, 10);
  recorder.RecordRounds(1);
  recorder.EndPhase();
  recorder.BeginPhase("partition");
  recorder.RecordPurchase(PurchaseKind::kPreference, 0, 2, 20);
  recorder.RecordPurchase(PurchaseKind::kPreference, 1, 2, 5);
  recorder.RecordRounds(2);
  recorder.EndPhase();
  recorder.EndPhase();
  recorder.RecordRounds(1);  // outside any phase

  const auto leaf = metrics::AggregateByPhase(recorder.events());
  EXPECT_EQ(leaf.at("spr/select").microtasks, 10);
  EXPECT_EQ(leaf.at("spr/partition").microtasks, 25);
  EXPECT_EQ(leaf.at("spr/partition").purchases, 2);
  EXPECT_EQ(leaf.at("").rounds, 1);
  EXPECT_EQ(leaf.count("spr"), 0u);  // no event fired directly in "spr"

  const auto rollup = metrics::AggregateByPhaseRollup(recorder.events());
  EXPECT_EQ(rollup.at("spr").microtasks, 35);
  EXPECT_EQ(rollup.at("spr").rounds, 3);
  EXPECT_EQ(rollup.at("").microtasks, 35);
  EXPECT_EQ(rollup.at("").rounds, 4);

  const metrics::PhaseStat totals = metrics::TraceTotals(recorder.events());
  EXPECT_EQ(totals.microtasks, 35);
  EXPECT_EQ(totals.rounds, 4);
  EXPECT_EQ(totals.purchases, 3);

  // Leaf attribution partitions the totals: summing all leaves recovers
  // the whole trace.
  metrics::PhaseStat summed;
  for (const auto& [phase, stat] : leaf) {
    summed.microtasks += stat.microtasks;
    summed.rounds += stat.rounds;
    summed.purchases += stat.purchases;
  }
  EXPECT_EQ(summed.microtasks, totals.microtasks);
  EXPECT_EQ(summed.rounds, totals.rounds);
  EXPECT_EQ(summed.purchases, totals.purchases);
}

TEST(AggregateTest, LastCounterReturnsMostRecent) {
  TraceRecorder recorder;
  recorder.RecordCounter("x", 1.0);
  recorder.RecordCounter("x", 7.0);
  EXPECT_EQ(metrics::LastCounter(recorder.events(), "x"), 7.0);
  EXPECT_EQ(metrics::LastCounter(recorder.events(), "absent", -1.0), -1.0);
}

TEST(AggregateTest, PhaseTableRendersOneRowPerPhase) {
  TraceRecorder recorder;
  recorder.BeginPhase("a");
  recorder.RecordPurchase(PurchaseKind::kPreference, 0, 1, 2);
  recorder.EndPhase();
  const auto table = metrics::PhaseTable(
      metrics::AggregateByPhaseRollup(recorder.events()), "t");
  EXPECT_EQ(table.num_rows(), 2u);  // "(total)" and "a"
}

// The acceptance invariant of the telemetry layer: for a full traced query,
// per-phase totals reduce exactly to the platform's aggregate counters, and
// every microtask is attributed to a named algorithm phase.
class TracedRunTest : public ::testing::Test {
 protected:
  void VerifyAgainstPlatform(core::TopKAlgorithm* algorithm,
                             const std::string& root_phase) {
    auto dataset = data::MakeUniformLadder(40, 10.0, 2.0);
    crowd::CrowdPlatform platform(dataset.get(), /*seed=*/20170514);
    TraceRecorder recorder;
    platform.SetRecorder(&recorder);
    const core::TopKResult result = algorithm->Run(&platform, /*k=*/5);
    ASSERT_EQ(result.items.size(), 5u);

    // Balanced phases.
    EXPECT_EQ(recorder.phase_depth(), 0);

    // Exact agreement between the trace reduction and the platform's own
    // aggregate accounting (and the result's copy of it).
    const metrics::PhaseStat totals = metrics::TraceTotals(recorder.events());
    EXPECT_EQ(totals.microtasks, platform.total_microtasks());
    EXPECT_EQ(totals.rounds, platform.rounds());
    EXPECT_EQ(totals.microtasks, result.total_microtasks);
    EXPECT_EQ(totals.rounds, result.rounds);
    EXPECT_EQ(recorder.total_microtasks(), platform.total_microtasks());
    EXPECT_EQ(recorder.total_rounds(), platform.rounds());
    EXPECT_GT(totals.microtasks, 0);

    // Every purchase happened inside the algorithm's root phase.
    for (const auto& event : recorder.events()) {
      if (event.kind == EventKind::kPurchase) {
        EXPECT_EQ(event.phase.rfind(root_phase, 0), 0u)
            << "purchase outside " << root_phase << ": " << event.phase;
      }
    }

    // The rollup root row equals the aggregate.
    const auto rollup = metrics::AggregateByPhaseRollup(recorder.events());
    EXPECT_EQ(rollup.at(root_phase).microtasks, platform.total_microtasks());
  }
};

TEST_F(TracedRunTest, SprPerPhaseTmcSumsToAggregate) {
  core::SprOptions options;
  core::Spr spr(options);
  VerifyAgainstPlatform(&spr, "spr");
}

TEST_F(TracedRunTest, SprTraceContainsAllThreePhases) {
  auto dataset = data::MakeUniformLadder(40, 10.0, 2.0);
  crowd::CrowdPlatform platform(dataset.get(), /*seed=*/7);
  TraceRecorder recorder;
  platform.SetRecorder(&recorder);
  core::Spr spr(core::SprOptions{});
  spr.Run(&platform, 5);
  const auto leaf = metrics::AggregateByPhase(recorder.events());
  std::set<std::string> roots;
  for (const auto& [phase, stat] : leaf) {
    (void)stat;
    // Collect the first two components ("spr/select", ...).
    const size_t first = phase.find('/');
    if (first == std::string::npos) continue;
    const size_t second = phase.find('/', first + 1);
    roots.insert(phase.substr(0, second));
  }
  EXPECT_TRUE(roots.count("spr/select")) << "missing select phase";
  EXPECT_TRUE(roots.count("spr/partition")) << "missing partition phase";
  EXPECT_TRUE(roots.count("spr/rank")) << "missing rank phase";

  // COMP tagging: partition purchases carry the confidence-process
  // iteration, starting from 0 (cold start).
  bool saw_tagged = false;
  for (const auto& event : recorder.events()) {
    if (event.kind == EventKind::kPurchase &&
        event.phase.rfind("spr/partition", 0) == 0) {
      EXPECT_GE(event.iteration, 0);
      saw_tagged = true;
    }
  }
  EXPECT_TRUE(saw_tagged);
}

TEST_F(TracedRunTest, BaselinesReconcileToo) {
  judgment::ComparisonOptions options;
  {
    baselines::TournamentTree algorithm(options);
    VerifyAgainstPlatform(&algorithm, "tourtree");
  }
  {
    baselines::HeapSortTopK algorithm(options);
    VerifyAgainstPlatform(&algorithm, "heapsort");
  }
  {
    baselines::QuickSelectTopK algorithm(options);
    VerifyAgainstPlatform(&algorithm, "quickselect");
  }
  {
    baselines::PbrTopK algorithm(options);
    VerifyAgainstPlatform(&algorithm, "pbr");
  }
}

TEST_F(TracedRunTest, UntracedRunsAreUnchanged) {
  // The same seed with and without a recorder must produce identical
  // results and accounting: telemetry observes, never perturbs.
  auto dataset = data::MakeUniformLadder(30, 10.0, 2.0);
  core::Spr spr(core::SprOptions{});

  crowd::CrowdPlatform plain(dataset.get(), /*seed=*/99);
  const core::TopKResult expected = spr.Run(&plain, 5);

  crowd::CrowdPlatform traced(dataset.get(), /*seed=*/99);
  TraceRecorder recorder;
  traced.SetRecorder(&recorder);
  const core::TopKResult observed = spr.Run(&traced, 5);

  EXPECT_EQ(expected.items, observed.items);
  EXPECT_EQ(expected.total_microtasks, observed.total_microtasks);
  EXPECT_EQ(expected.rounds, observed.rounds);
}

}  // namespace
}  // namespace crowdtopk
