// Tests for dataset CSV import/export.

#include <cstdio>
#include <memory>
#include <string>

#include "data/generators.h"
#include "data/io.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace crowdtopk::data {
namespace {

std::string TempPath(const std::string& name) {
  return "/tmp/crowdtopk_io_test_" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs(content.c_str(), f);
  std::fclose(f);
}

TEST(HistogramIoTest, RoundTripPreservesJudgmentDistribution) {
  auto original = MakeBookLike(5);
  const std::string path = TempPath("hist.csv");
  ASSERT_TRUE(SaveHistogramCsv(*original, path).ok());

  HistogramDataset::Options options;
  options.bin_values = original->bin_values();
  auto loaded = LoadHistogramCsv(path, "Book", options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ((*loaded)->num_items(), original->num_items());
  // Ground truth identical (same histograms, same weighted-rank options).
  for (ItemId i = 0; i < original->num_items(); ++i) {
    EXPECT_NEAR((*loaded)->TrueScore(i), original->TrueScore(i), 1e-6);
  }
  // Same RNG stream => identical sampled judgments.
  util::Rng a(9), b(9);
  for (int t = 0; t < 200; ++t) {
    EXPECT_DOUBLE_EQ(original->PreferenceJudgment(3, 40, &a),
                     (*loaded)->PreferenceJudgment(3, 40, &b));
  }
  std::remove(path.c_str());
}

TEST(HistogramIoTest, RejectsBadColumnCount) {
  const std::string path = TempPath("bad_cols.csv");
  WriteFile(path, "item_id,votes_bin1,votes_bin2\n0,1,2\n1,3\n");
  HistogramDataset::Options options;
  options.bin_values = {1.0, 2.0};
  const auto result = LoadHistogramCsv(path, "x", options);
  EXPECT_FALSE(result.ok());
  std::remove(path.c_str());
}

TEST(HistogramIoTest, RejectsSparseIds) {
  const std::string path = TempPath("sparse.csv");
  WriteFile(path, "item_id,votes_bin1,votes_bin2\n0,1,2\n2,3,4\n");
  HistogramDataset::Options options;
  options.bin_values = {1.0, 2.0};
  EXPECT_FALSE(LoadHistogramCsv(path, "x", options).ok());
  std::remove(path.c_str());
}

TEST(HistogramIoTest, MissingFileIsNotFound) {
  HistogramDataset::Options options;
  options.bin_values = {1.0, 2.0};
  const auto result =
      LoadHistogramCsv("/nonexistent/nope.csv", "x", options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kNotFound);
}

TEST(ScoresIoTest, RoundTrip) {
  auto dataset = MakeJesterLike(2);
  const std::string path = TempPath("scores.csv");
  ASSERT_TRUE(SaveScoresCsv(*dataset, path).ok());
  const auto scores = LoadScoresCsv(path);
  ASSERT_TRUE(scores.ok());
  ASSERT_EQ(static_cast<int64_t>(scores->size()), dataset->num_items());
  for (ItemId i = 0; i < dataset->num_items(); ++i) {
    EXPECT_NEAR((*scores)[i], dataset->TrueScore(i), 1e-9);
  }
  std::remove(path.c_str());
}

TEST(ScoresIoTest, CommentsAndHeaderSkipped) {
  const std::string path = TempPath("commented.csv");
  WriteFile(path, "# a comment\nitem_id,score\n0,1.5\n1,2.5\n");
  const auto scores = LoadScoresCsv(path);
  ASSERT_TRUE(scores.ok()) << scores.status().ToString();
  EXPECT_EQ(scores->size(), 2u);
  EXPECT_DOUBLE_EQ((*scores)[1], 2.5);
  std::remove(path.c_str());
}

TEST(PairwiseIoTest, RoundTripPreservesRecords) {
  auto original = MakePhotoLike(3);
  const std::string path = TempPath("pairs.csv");
  ASSERT_TRUE(SavePairwiseCsv(*original, path).ok());
  std::vector<double> scores;
  for (ItemId i = 0; i < original->num_items(); ++i) {
    scores.push_back(original->TrueScore(i));
  }
  auto loaded = LoadPairwiseCsv(path, "Photo", scores);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ((*loaded)->num_items(), original->num_items());
  EXPECT_EQ((*loaded)->RecordsFor(10, 20), original->RecordsFor(10, 20));
  EXPECT_EQ((*loaded)->RecordsFor(0, 199), original->RecordsFor(0, 199));
  EXPECT_EQ((*loaded)->TrueRank(5), original->TrueRank(5));
  std::remove(path.c_str());
}

TEST(PairwiseIoTest, OrientationNormalised) {
  const std::string path = TempPath("orient.csv");
  WriteFile(path,
            "left_id,right_id,preference\n"
            "1,0,0.5\n"
            "0,1,-0.25\n");
  auto loaded = LoadPairwiseCsv(path, "x", {1.0, 2.0});
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // Both records stored oriented as v(0, 1): -0.5 and -0.25.
  const std::vector<double> expected = {-0.5, -0.25};
  EXPECT_EQ((*loaded)->RecordsFor(0, 1), expected);
  std::remove(path.c_str());
}

TEST(PairwiseIoTest, RejectsMissingPairsAndBadValues) {
  const std::string path = TempPath("missing.csv");
  WriteFile(path, "left_id,right_id,preference\n0,1,0.5\n");
  // 3 items but only pair (0,1) present.
  EXPECT_FALSE(LoadPairwiseCsv(path, "x", {1.0, 2.0, 3.0}).ok());
  WriteFile(path, "left_id,right_id,preference\n0,1,1.5\n");
  EXPECT_FALSE(LoadPairwiseCsv(path, "x", {1.0, 2.0}).ok());
  WriteFile(path, "left_id,right_id,preference\n0,0,0.5\n");
  EXPECT_FALSE(LoadPairwiseCsv(path, "x", {1.0, 2.0}).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace crowdtopk::data
