// Tests for the crowd substrate: oracle defaults and platform accounting.

#include <memory>
#include <vector>

#include "crowd/latency_model.h"
#include "crowd/oracle.h"
#include "crowd/platform.h"
#include "crowd/simulator.h"
#include "crowd/types.h"
#include "gtest/gtest.h"
#include "telemetry/recorder.h"
#include "util/random.h"

namespace crowdtopk::crowd {
namespace {

// A deterministic oracle for accounting tests: preference = +0.5 when i < j.
class FixedOracle : public JudgmentOracle {
 public:
  explicit FixedOracle(int64_t n) : n_(n) {}
  int64_t num_items() const override { return n_; }
  double PreferenceJudgment(ItemId i, ItemId j,
                            util::Rng* rng) const override {
    (void)rng;
    return i < j ? 0.5 : -0.5;
  }
  double GradedJudgment(ItemId i, util::Rng* rng) const override {
    (void)rng;
    return static_cast<double>(i) / static_cast<double>(n_);
  }

 private:
  int64_t n_;
};

// An oracle that returns exact ties to exercise the binary fallback.
class AlwaysTieOracle : public JudgmentOracle {
 public:
  int64_t num_items() const override { return 2; }
  double PreferenceJudgment(ItemId, ItemId, util::Rng*) const override {
    return 0.0;
  }
  double GradedJudgment(ItemId, util::Rng*) const override { return 0.5; }
};

TEST(OutcomeTest, ReverseIsInvolutionAndSwaps) {
  EXPECT_EQ(Reverse(ComparisonOutcome::kLeftWins),
            ComparisonOutcome::kRightWins);
  EXPECT_EQ(Reverse(ComparisonOutcome::kRightWins),
            ComparisonOutcome::kLeftWins);
  EXPECT_EQ(Reverse(ComparisonOutcome::kTie), ComparisonOutcome::kTie);
  EXPECT_EQ(Reverse(Reverse(ComparisonOutcome::kLeftWins)),
            ComparisonOutcome::kLeftWins);
}

TEST(OracleTest, DefaultBinaryJudgmentTakesSign) {
  FixedOracle oracle(4);
  util::Rng rng(1);
  EXPECT_EQ(oracle.BinaryJudgment(0, 1, &rng), 1.0);
  EXPECT_EQ(oracle.BinaryJudgment(3, 1, &rng), -1.0);
}

TEST(OracleTest, BinaryJudgmentBreaksPersistentTies) {
  AlwaysTieOracle oracle;
  util::Rng rng(2);
  // Must terminate and return a valid vote despite the oracle always tying.
  int plus = 0, minus = 0;
  for (int t = 0; t < 50; ++t) {
    const double v = oracle.BinaryJudgment(0, 1, &rng);
    EXPECT_TRUE(v == 1.0 || v == -1.0);
    (v > 0 ? plus : minus)++;
  }
  EXPECT_GT(plus, 0);
  EXPECT_GT(minus, 0);
}

TEST(PlatformTest, CountsEveryMicrotask) {
  FixedOracle oracle(10);
  CrowdPlatform platform(&oracle, 7);
  std::vector<double> out;
  platform.CollectPreferences(0, 1, 5, &out);
  EXPECT_EQ(platform.total_microtasks(), 5);
  EXPECT_EQ(out.size(), 5u);
  platform.CollectBinaryVotes(2, 3, 4, &out);
  EXPECT_EQ(platform.total_microtasks(), 9);
  platform.CollectGrades(4, 3, &out);
  EXPECT_EQ(platform.total_microtasks(), 12);
  EXPECT_EQ(out.size(), 12u);  // appended
}

TEST(PlatformTest, ZeroCountIsFree) {
  FixedOracle oracle(4);
  CrowdPlatform platform(&oracle, 7);
  std::vector<double> out;
  platform.CollectPreferences(0, 1, 0, &out);
  EXPECT_EQ(platform.total_microtasks(), 0);
  EXPECT_TRUE(out.empty());
}

TEST(PlatformTest, RoundAccounting) {
  FixedOracle oracle(4);
  CrowdPlatform platform(&oracle, 7);
  EXPECT_EQ(platform.rounds(), 0);
  platform.NextRound();
  platform.NextRound();
  EXPECT_EQ(platform.rounds(), 2);
  platform.AccountRounds(5);
  EXPECT_EQ(platform.rounds(), 7);
}

TEST(PlatformTest, ResetCountersKeepsRngStream) {
  FixedOracle oracle(4);
  CrowdPlatform platform(&oracle, 7);
  std::vector<double> out;
  platform.CollectPreferences(0, 1, 3, &out);
  platform.NextRound();
  platform.ResetCounters();
  EXPECT_EQ(platform.total_microtasks(), 0);
  EXPECT_EQ(platform.rounds(), 0);
}

TEST(PlatformTest, JudgmentsDeterministicPerSeed) {
  FixedOracle oracle(4);
  // FixedOracle ignores the rng; use a real random source through Gaussian
  // noise instead: two platforms with equal seeds must agree on binary votes
  // drawn through the default sign-of-preference path of a noisy oracle.
  class NoisyOracle : public JudgmentOracle {
   public:
    int64_t num_items() const override { return 4; }
    double PreferenceJudgment(ItemId, ItemId, util::Rng* rng) const override {
      return rng->Gaussian();
    }
    double GradedJudgment(ItemId, util::Rng* rng) const override {
      return rng->Uniform();
    }
  };
  NoisyOracle noisy;
  CrowdPlatform a(&noisy, 99);
  CrowdPlatform b(&noisy, 99);
  std::vector<double> va, vb;
  a.CollectPreferences(0, 1, 20, &va);
  b.CollectPreferences(0, 1, 20, &vb);
  EXPECT_EQ(va, vb);
  (void)oracle;
}

// --------------------------------------------------- WallClockSimulator

SimulatorOptions DeterministicSim(int64_t workers) {
  SimulatorOptions options;
  options.num_workers = workers;
  options.mean_task_seconds = 10.0;
  options.task_time_sigma = 0.0;
  options.mean_pickup_seconds = 0.0;
  options.cost_per_task_usd = 0.001;
  return options;
}

TEST(SimulatorTest, DeterministicRoundDuration) {
  WallClockSimulator simulator(DeterministicSim(4), 1);
  simulator.OnPurchase(12);  // 12 tasks, 4 workers, 10 s each
  simulator.OnRoundBoundary();
  EXPECT_DOUBLE_EQ(simulator.now_seconds(), 30.0);  // 3 sequential slots
  EXPECT_DOUBLE_EQ(simulator.total_cost_usd(), 0.012);
  EXPECT_EQ(simulator.total_microtasks(), 12);
}

TEST(SimulatorTest, PartialLastWaveStillTakesAFullTask) {
  WallClockSimulator simulator(DeterministicSim(4), 1);
  simulator.OnPurchase(13);  // ceil(13/4) = 4 waves
  simulator.OnRoundBoundary();
  EXPECT_DOUBLE_EQ(simulator.now_seconds(), 40.0);
}

TEST(SimulatorTest, EmptyRoundIsFree) {
  WallClockSimulator simulator(DeterministicSim(2), 1);
  simulator.OnRoundBoundary();
  simulator.OnRoundBoundary();
  EXPECT_DOUBLE_EQ(simulator.now_seconds(), 0.0);
}

TEST(SimulatorTest, MoreWorkersFasterRounds) {
  WallClockSimulator slow(DeterministicSim(2), 1);
  WallClockSimulator fast(DeterministicSim(20), 1);
  for (auto* simulator : {&slow, &fast}) {
    simulator->OnPurchase(100);
    simulator->OnRoundBoundary();
  }
  EXPECT_GT(slow.now_seconds(), 5.0 * fast.now_seconds());
}

TEST(SimulatorTest, StochasticDurationsHaveRequestedMean) {
  SimulatorOptions options = DeterministicSim(1);
  options.task_time_sigma = 0.5;  // lognormal, mean still 10 s
  WallClockSimulator simulator(options, 7);
  simulator.OnPurchase(20000);  // single worker: total = sum of durations
  simulator.OnRoundBoundary();
  EXPECT_NEAR(simulator.now_seconds() / 20000.0, 10.0, 0.3);
}

TEST(SimulatorTest, PlatformIntegrationCountsEverything) {
  FixedOracle oracle(6);
  WallClockSimulator simulator(DeterministicSim(3), 2);
  CrowdPlatform platform(&oracle, 3);
  platform.SetLatencyModel(&simulator);
  std::vector<double> out;
  platform.CollectPreferences(0, 1, 9, &out);
  platform.CollectGrades(2, 6, &out);
  platform.NextRound();
  EXPECT_EQ(simulator.total_microtasks(), 15);
  EXPECT_DOUBLE_EQ(simulator.now_seconds(), 50.0);  // ceil(15/3) = 5 waves
  // AccountRounds closes pending purchases too.
  platform.CollectPreferences(3, 4, 3, &out);
  platform.AccountRounds(2);
  EXPECT_DOUBLE_EQ(simulator.now_seconds(), 60.0);  // one 10 s wave + empty
}

// A latency model that just counts callbacks, for accounting tests.
class CountingModel : public LatencyModel {
 public:
  void OnPurchase(int64_t count) override { purchased_ += count; }
  void OnRoundBoundary() override { ++boundaries_; }
  int64_t purchased() const { return purchased_; }
  int64_t boundaries() const { return boundaries_; }

 private:
  int64_t purchased_ = 0;
  int64_t boundaries_ = 0;
};

TEST(PlatformAccountingTest, AccountRoundsEmitsOneBoundaryPerRound) {
  FixedOracle oracle(4);
  CountingModel model;
  telemetry::TraceRecorder recorder;
  CrowdPlatform platform(&oracle, 11);
  platform.SetLatencyModel(&model);
  platform.SetRecorder(&recorder);

  platform.AccountRounds(5);
  // Batched accounting must be indistinguishable from 5 NextRound calls to
  // both observers: 5 boundary callbacks, 5 recorded rounds.
  EXPECT_EQ(platform.rounds(), 5);
  EXPECT_EQ(model.boundaries(), 5);
  EXPECT_EQ(recorder.total_rounds(), 5);

  platform.NextRound();
  EXPECT_EQ(platform.rounds(), 6);
  EXPECT_EQ(model.boundaries(), 6);
  EXPECT_EQ(recorder.total_rounds(), 6);

  // Zero rounds is a no-op for everyone.
  platform.AccountRounds(0);
  EXPECT_EQ(platform.rounds(), 6);
  EXPECT_EQ(model.boundaries(), 6);
  EXPECT_EQ(recorder.total_rounds(), 6);
}

TEST(PlatformAccountingTest, ResetCountersDoesNotDesyncRecorder) {
  FixedOracle oracle(4);
  telemetry::TraceRecorder recorder;
  CrowdPlatform platform(&oracle, 11);
  platform.SetRecorder(&recorder);

  std::vector<double> out;
  platform.CollectPreferences(0, 1, 7, &out);
  platform.AccountRounds(3);
  EXPECT_EQ(recorder.total_microtasks(), platform.total_microtasks());
  EXPECT_EQ(recorder.total_rounds(), platform.rounds());

  // ResetCounters only rewinds the platform's aggregates; the recorder is
  // append-only and keeps the full history of the query so far.
  platform.ResetCounters();
  EXPECT_EQ(platform.total_microtasks(), 0);
  EXPECT_EQ(platform.rounds(), 0);
  EXPECT_EQ(recorder.total_microtasks(), 7);
  EXPECT_EQ(recorder.total_rounds(), 3);

  // To restart both in lockstep, clear the recorder alongside the reset;
  // from then on the two stay equal again.
  recorder.Clear();
  platform.CollectPreferences(2, 3, 4, &out);
  platform.NextRound();
  EXPECT_EQ(recorder.total_microtasks(), platform.total_microtasks());
  EXPECT_EQ(recorder.total_rounds(), platform.rounds());
}

}  // namespace
}  // namespace crowdtopk::crowd
