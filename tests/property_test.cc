// Property-based sweeps over the library's core statistical guarantees:
// the comparison process hits its confidence level across (alpha, effect
// size); workloads scale the right way; sorting is exact when comparisons
// are; SPR is exact across an (N, k) grid on separable data.

#include <cmath>
#include <memory>
#include <set>
#include <tuple>

#include "core/sorting.h"
#include "core/spr.h"
#include "crowd/platform.h"
#include "data/gaussian_dataset.h"
#include "data/generators.h"
#include "fault/injector.h"
#include "gtest/gtest.h"
#include "judgment/cache.h"
#include "judgment/comparison.h"

namespace crowdtopk {
namespace {

// --------------- COMP accuracy across alpha, effect size, and estimator

// Params: (alpha, effect = mean/sd of one judgment, estimator).
class ComparisonGuarantee
    : public ::testing::TestWithParam<
          std::tuple<double, double, judgment::Estimator>> {};

TEST_P(ComparisonGuarantee, AccuracyAtLeastConfidence) {
  const double alpha = std::get<0>(GetParam());
  const double effect = std::get<1>(GetParam());
  // Judgment ~ N(0.1, (0.1/effect)^2) on the preference scale.
  data::GaussianDataset pair("pair", {0.0, 1.0}, 1.0 / effect, 10.0);
  judgment::ComparisonOptions options;
  options.alpha = alpha;
  options.budget = 1 << 20;
  options.min_workload = 30;
  options.batch_size = 30;
  options.estimator = std::get<2>(GetParam());
  stats::TCriticalCache t_cache(alpha);
  crowd::CrowdPlatform platform(&pair,
                                17 + static_cast<uint64_t>(effect * 100));
  int correct = 0;
  const int trials = 150;
  for (int t = 0; t < trials; ++t) {
    judgment::ComparisonSession session(1, 0, &options, &t_cache);
    if (session.RunToCompletion(&platform) ==
        crowd::ComparisonOutcome::kLeftWins) {
      ++correct;
    }
  }
  // 1 - alpha minus Monte-Carlo slack (3 sigma of a binomial proportion).
  const double slack =
      3.0 * std::sqrt(alpha * (1 - alpha) / trials) + 0.01;
  EXPECT_GE(correct / static_cast<double>(trials), 1.0 - alpha - slack)
      << "alpha=" << alpha << " effect=" << effect;
}

INSTANTIATE_TEST_SUITE_P(
    StudentSweep, ComparisonGuarantee,
    ::testing::Combine(::testing::Values(0.2, 0.1, 0.05, 0.02),
                       ::testing::Values(0.3, 0.6, 1.5),
                       ::testing::Values(judgment::Estimator::kStudent)));

// Algorithm 5's guarantee is the same 1 - alpha, so SteinComp gets the
// identical sweep rather than the single agreement spot-check below.
INSTANTIATE_TEST_SUITE_P(
    SteinSweep, ComparisonGuarantee,
    ::testing::Combine(::testing::Values(0.2, 0.1, 0.05, 0.02),
                       ::testing::Values(0.3, 0.6, 1.5),
                       ::testing::Values(judgment::Estimator::kStein)));

// ------------------------- COMP degradation under a spammer-ridden crowd

// Params: fraction of spammer workers.
class FaultyComparisonGuarantee : public ::testing::TestWithParam<double> {};

TEST_P(FaultyComparisonGuarantee, DegradesGracefullyUnderSpammers) {
  const double spammer_fraction = GetParam();
  const double alpha = 0.05;
  data::GaussianDataset pair("pair", {0.0, 1.0}, 1.0 / 0.6, 10.0);
  fault::FaultPlan plan;
  plan.spammer_fraction = spammer_fraction;
  const fault::FaultInjectionOracle faulty(&pair, plan, 4242);

  judgment::ComparisonOptions options;
  options.alpha = alpha;
  options.budget = 1 << 20;
  options.min_workload = 30;
  options.batch_size = 30;
  stats::TCriticalCache t_cache(alpha);

  const int trials = 120;
  const auto accuracy_and_workload = [&](const crowd::JudgmentOracle* oracle,
                                         double* mean_workload) {
    crowd::CrowdPlatform platform(oracle, 91);
    int correct = 0;
    double workload = 0.0;
    for (int t = 0; t < trials; ++t) {
      judgment::ComparisonSession session(1, 0, &options, &t_cache);
      const crowd::ComparisonOutcome outcome =
          session.RunToCompletion(&platform);
      // Graceful degradation, part 1: every session still terminates and
      // honours the budget cap even when the crowd misbehaves.
      EXPECT_TRUE(session.Finished());
      EXPECT_LE(session.workload(), options.budget);
      correct += outcome == crowd::ComparisonOutcome::kLeftWins;
      workload += static_cast<double>(session.workload());
    }
    *mean_workload = workload / trials;
    return static_cast<double>(correct) / trials;
  };

  double clean_workload = 0.0, faulty_workload = 0.0;
  const double clean_accuracy = accuracy_and_workload(&pair, &clean_workload);
  const double faulty_accuracy =
      accuracy_and_workload(&faulty, &faulty_workload);

  // Part 2: spam is mean-zero noise, so COMP should pay more microtasks
  // rather than flip its answer — accuracy sags but stays far above chance.
  EXPECT_GE(clean_accuracy, 1.0 - alpha - 0.06);
  EXPECT_GE(faulty_accuracy, 1.0 - alpha - spammer_fraction - 0.1)
      << "spammer_fraction=" << spammer_fraction;
  // Part 3: the extra variance is paid for in workload, visibly so.
  EXPECT_GT(faulty_workload, clean_workload)
      << "spammer_fraction=" << spammer_fraction;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FaultyComparisonGuarantee,
                         ::testing::Values(0.1, 0.3));

// ----------------------------------- Workload monotone in difficulty

TEST(WorkloadScalingTest, HarderPairsCostMore) {
  judgment::ComparisonOptions options;
  options.alpha = 0.05;
  options.budget = 1 << 20;
  options.batch_size = 1;
  stats::TCriticalCache t_cache(options.alpha);
  double previous = 0.0;
  for (double effect : {2.0, 1.0, 0.5, 0.25}) {
    data::GaussianDataset pair("pair", {0.0, 1.0}, 1.0 / effect, 10.0);
    crowd::CrowdPlatform platform(&pair, 23);
    double total = 0.0;
    for (int t = 0; t < 40; ++t) {
      judgment::ComparisonSession session(1, 0, &options, &t_cache);
      session.RunToCompletion(&platform);
      total += static_cast<double>(session.workload());
    }
    EXPECT_GE(total, previous) << "effect=" << effect;
    previous = total;
  }
}

TEST(WorkloadScalingTest, InverseSquareLaw) {
  // n ~ (z sigma / mu)^2: quadrupling the difficulty ratio should raise the
  // mean workload by roughly 16x (modulo the cold-start floor).
  judgment::ComparisonOptions options;
  options.alpha = 0.05;
  options.budget = 1 << 22;
  options.min_workload = 5;  // lower the floor to expose the law
  options.batch_size = 1;
  stats::TCriticalCache t_cache(options.alpha);
  auto mean_workload = [&](double effect, uint64_t seed) {
    data::GaussianDataset pair("pair", {0.0, 1.0}, 1.0 / effect, 10.0);
    crowd::CrowdPlatform platform(&pair, seed);
    double total = 0.0;
    const int trials = 60;
    for (int t = 0; t < trials; ++t) {
      judgment::ComparisonSession session(1, 0, &options, &t_cache);
      session.RunToCompletion(&platform);
      total += static_cast<double>(session.workload());
    }
    return total / trials;
  };
  const double easy = mean_workload(0.4, 31);
  const double hard = mean_workload(0.1, 32);
  EXPECT_GT(hard / easy, 6.0);   // well above linear
  EXPECT_LT(hard / easy, 40.0);  // and in the right ballpark of 16x
}

// ------------------------------------ ConfirmSort exactness sweep

class SortExactness : public ::testing::TestWithParam<int> {};

TEST_P(SortExactness, SortsRandomPermutationsOfSeparableItems) {
  const int n = GetParam();
  auto dataset = data::MakeUniformLadder(n, 10.0, 1.5);
  judgment::ComparisonOptions options;
  options.alpha = 0.02;
  options.budget = 2000;
  options.batch_size = 30;
  for (int trial = 0; trial < 4; ++trial) {
    crowd::CrowdPlatform platform(dataset.get(),
                                  1000 + trial * 37 + n);
    judgment::ComparisonCache cache(options);
    std::vector<crowd::ItemId> items(n);
    for (int i = 0; i < n; ++i) items[i] = i;
    platform.rng()->Shuffle(&items);
    core::ConfirmSort(&items, &cache, &platform);
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(items[i], n - 1 - i) << "n=" << n << " pos=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SortExactness,
                         ::testing::Values(2, 3, 5, 9, 16, 25));

// ----------------------------------------- SPR exactness (N, k) grid

class SprGrid : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SprGrid, ExactOnSeparableData) {
  const int n = std::get<0>(GetParam());
  const int k = std::get<1>(GetParam());
  if (k > n) GTEST_SKIP();
  auto dataset = data::MakeUniformLadder(n, 10.0, 2.0);
  core::SprOptions options;
  options.comparison.alpha = 0.02;
  options.comparison.budget = 2000;
  options.comparison.batch_size = 30;
  core::Spr spr(options);
  crowd::CrowdPlatform platform(dataset.get(), 42 + n * 100 + k);
  const core::TopKResult result = spr.Run(&platform, k);
  ASSERT_EQ(result.items.size(), static_cast<size_t>(k));
  for (int p = 0; p < k; ++p) {
    EXPECT_EQ(result.items[p], n - 1 - p) << "n=" << n << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SprGrid,
                         ::testing::Combine(::testing::Values(10, 25, 60,
                                                              120),
                                            ::testing::Values(1, 3, 8, 20)));

// ------------------------------- Estimator agreement (Student ~ Stein)

TEST(EstimatorAgreementTest, SteinWithinTwoXOfStudent) {
  judgment::ComparisonOptions student;
  student.alpha = 0.05;
  student.budget = 1 << 20;
  student.batch_size = 1;
  judgment::ComparisonOptions stein = student;
  stein.estimator = judgment::Estimator::kStein;

  data::GaussianDataset pair("pair", {0.0, 1.0}, 2.5, 10.0);
  double workloads[2] = {0.0, 0.0};
  int index = 0;
  for (const auto* options : {&student, &stein}) {
    stats::TCriticalCache t_cache(options->alpha);
    crowd::CrowdPlatform platform(&pair, 77);
    for (int t = 0; t < 50; ++t) {
      judgment::ComparisonSession session(1, 0, options, &t_cache);
      session.RunToCompletion(&platform);
      workloads[index] += static_cast<double>(session.workload());
    }
    ++index;
  }
  EXPECT_LT(workloads[1], 2.0 * workloads[0]);
  EXPECT_LT(workloads[0], 2.0 * workloads[1]);
}

// ------------------------------------- Budget cap invariant everywhere

class BudgetCap : public ::testing::TestWithParam<int> {};

TEST_P(BudgetCap, NoSessionEverExceedsB) {
  const int budget = GetParam();
  auto dataset = data::MakeUniformLadder(20, 0.2, 5.0);  // very hard
  judgment::ComparisonOptions options;
  options.alpha = 0.02;
  options.budget = budget;
  options.min_workload = std::min<int64_t>(30, budget);
  options.batch_size = 30;
  crowd::CrowdPlatform platform(dataset.get(), 5 + budget);
  judgment::ComparisonCache cache(options);
  core::SprOptions spr_options;
  spr_options.comparison = options;
  core::Spr spr(spr_options);
  std::vector<crowd::ItemId> items(20);
  for (int i = 0; i < 20; ++i) items[i] = i;
  spr.RunOnItems(items, 5, &cache, &platform);
  for (int i = 0; i < 20; ++i) {
    for (int j = i + 1; j < 20; ++j) {
      EXPECT_LE(cache.Workload(i, j), budget);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BudgetCap,
                         ::testing::Values(30, 45, 100, 300));

}  // namespace
}  // namespace crowdtopk
