// Tests for the parallel experiment-execution subsystem (src/exec): the
// work-stealing thread pool, deterministic parallel_for, result sink,
// run registry (resume), run engine, and — the property everything above
// exists to guarantee — bit-identical bench results for any worker count.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/heap_sort.h"
#include "baselines/tournament_tree.h"
#include "bench/harness.h"
#include "core/spr.h"
#include "data/generators.h"
#include "exec/parallel_for.h"
#include "exec/result_sink.h"
#include "exec/run_engine.h"
#include "exec/thread_pool.h"
#include "util/random.h"

namespace crowdtopk {
namespace {

// ---------------------------------------------------------------- SplitSeed

TEST(SplitSeedTest, IsPureFunctionOfSeedAndStream) {
  EXPECT_EQ(util::SplitSeed(1, 0), util::SplitSeed(1, 0));
  EXPECT_NE(util::SplitSeed(1, 0), util::SplitSeed(1, 1));
  EXPECT_NE(util::SplitSeed(1, 0), util::SplitSeed(2, 0));
  // Nearby seeds and streams must not collide (a weak mixing function
  // would map (seed, stream) and (seed + 1, stream - 1) together).
  EXPECT_NE(util::SplitSeed(1, 1), util::SplitSeed(2, 0));
}

TEST(SplitSeedTest, RngSplitIsOrderIndependent) {
  util::Rng fresh(42);
  util::Rng advanced(42);
  for (int i = 0; i < 100; ++i) advanced.NextUint64();
  // Fork() depends on draw position; Split() must not.
  for (uint64_t stream : {0ULL, 1ULL, 7ULL}) {
    EXPECT_EQ(fresh.Split(stream).NextUint64(),
              advanced.Split(stream).NextUint64());
    EXPECT_EQ(fresh.Split(stream).NextUint64(),
              util::Rng(util::SplitSeed(42, stream)).NextUint64());
  }
}

TEST(SplitSeedTest, StreamsAreStatisticallyDistinct) {
  // First draws of 1000 sibling streams should be essentially unique.
  std::vector<uint64_t> first_draws;
  for (uint64_t s = 0; s < 1000; ++s) {
    first_draws.push_back(util::Rng(util::SplitSeed(7, s)).NextUint64());
  }
  std::sort(first_draws.begin(), first_draws.end());
  EXPECT_EQ(std::unique(first_draws.begin(), first_draws.end()),
            first_draws.end());
}

// --------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int64_t> count{0};
  {
    exec::ThreadPool pool(4);
    for (int i = 0; i < 1000; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.Drain();
    EXPECT_EQ(count.load(), 1000);
  }
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int64_t> count{0};
  {
    exec::ThreadPool pool(2);
    for (int i = 0; i < 500; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    // No Drain(): destruction itself must wait for all 500.
  }
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPoolTest, SingleThreadPoolStillRunsTasks) {
  std::atomic<int64_t> count{0};
  exec::ThreadPool pool(1);
  for (int i = 0; i < 50; ++i) pool.Submit([&count] { count.fetch_add(1); });
  pool.Drain();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, SubmitFromWorkerThreads) {
  // Nested submission: tasks submitting tasks (the work-stealing deques'
  // LIFO/steal split exists for exactly this shape).
  std::atomic<int64_t> count{0};
  exec::ThreadPool pool(4);
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&pool, &count] {
      for (int j = 0; j < 10; ++j) {
        pool.Submit([&count] { count.fetch_add(1); });
      }
    });
  }
  pool.Drain();
  EXPECT_EQ(count.load(), 200);
}

// -------------------------------------------------------------- ParallelFor

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  constexpr int64_t kN = 20000;
  exec::ThreadPool pool(8);
  std::vector<std::atomic<int32_t>> hits(kN);
  for (auto& h : hits) h.store(0);
  // Tiny body => maximal contention on the index cursor.
  exec::ParallelFor(&pool, 0, kN,
                    [&hits](int64_t i) { hits[i].fetch_add(1); });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, SerialPathMatchesContract) {
  std::vector<int> hits(100, 0);
  exec::ParallelFor(nullptr, 0, 100, [&hits](int64_t i) { hits[i]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
  exec::ParallelFor(nullptr, 5, 5, [](int64_t) { FAIL(); });  // empty range
}

TEST(ParallelForTest, PropagatesSmallestFailingIndex) {
  exec::ThreadPool pool(4);
  for (int repeat = 0; repeat < 3; ++repeat) {
    try {
      exec::ParallelFor(&pool, 0, 1000, [](int64_t i) {
        if (i % 250 == 37) {  // fails at 37, 287, 537, 787
          throw std::runtime_error("boom " + std::to_string(i));
        }
      });
      FAIL() << "expected ParallelFor to rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom 37");
    }
  }
  // The pool survives exceptions and stays usable.
  std::atomic<int64_t> count{0};
  exec::ParallelFor(&pool, 0, 64, [&count](int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
}

// --------------------------------------------------------------- ResultSink

TEST(ResultSinkTest, ReducesInCanonicalOrder) {
  exec::ResultSink sink(3);
  // Out-of-order deposit, as a parallel schedule would produce.
  sink.Put(2, {3.0, 30.0});
  EXPECT_FALSE(sink.Complete());
  sink.Put(0, {1.0, 10.0});
  sink.Put(1, {2.0, 20.0});
  EXPECT_TRUE(sink.Complete());
  const std::vector<double> mean = sink.Mean();
  ASSERT_EQ(mean.size(), 2u);
  EXPECT_DOUBLE_EQ(mean[0], 2.0);
  EXPECT_DOUBLE_EQ(mean[1], 20.0);
  const auto records = sink.Take();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], (std::vector<double>{1.0, 10.0}));
  EXPECT_EQ(records[2], (std::vector<double>{3.0, 30.0}));
}

// -------------------------------------------------------------- RunRegistry

std::string TempPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name + "." +
         std::to_string(::getpid());
}

TEST(RunRegistryTest, RoundTripsThroughTheJournalFile) {
  const std::string path = TempPath("crowdtopk_registry_roundtrip");
  std::remove(path.c_str());
  const exec::RunKey key{"exp \"quoted\"", 3};
  const std::vector<double> values = {88233.0, 57.0, 0.98123456789012345,
                                      1.0 / 3.0};
  {
    exec::RunRegistry registry(path);
    registry.Record(key, 7, 123456789, values);
    EXPECT_EQ(registry.size(), 1);
    std::vector<double> loaded;
    ASSERT_TRUE(registry.Lookup(key, 7, 123456789, &loaded));
    EXPECT_EQ(loaded, values);
  }
  // A fresh registry object must reload the entry from disk, bit-exactly.
  exec::RunRegistry reloaded(path);
  EXPECT_EQ(reloaded.size(), 1);
  std::vector<double> loaded;
  ASSERT_TRUE(reloaded.Lookup(key, 7, 123456789, &loaded));
  EXPECT_EQ(loaded, values);
  // Different run / seed / point: miss.
  EXPECT_FALSE(reloaded.Lookup(key, 8, 123456789, &loaded));
  EXPECT_FALSE(reloaded.Lookup(key, 7, 5, &loaded));
  EXPECT_FALSE(reloaded.Lookup({key.experiment, 4}, 7, 123456789, &loaded));
  std::remove(path.c_str());
}

TEST(RunRegistryTest, EngineSkipsRecordedRuns) {
  const std::string path = TempPath("crowdtopk_registry_resume");
  std::remove(path.c_str());
  const exec::RunKey key{"resume_test", 0};
  std::atomic<int64_t> executed{0};
  const auto task = [&executed](int64_t r, uint64_t) -> std::vector<double> {
    executed.fetch_add(1);
    return {static_cast<double>(r) * 1.5};
  };
  std::vector<std::vector<double>> first;
  {
    exec::RunRegistry registry(path);
    exec::RunEngine::Options options;
    options.jobs = 2;
    options.registry = &registry;
    exec::RunEngine engine(options);
    first = engine.Run(key, 10, 99, task);
    EXPECT_EQ(executed.load(), 10);
  }
  {
    // Same key + seed, fresh process simulated by a fresh registry: every
    // run is served from the journal, none re-executed.
    exec::RunRegistry registry(path);
    exec::RunEngine::Options options;
    options.jobs = 2;
    options.registry = &registry;
    exec::RunEngine engine(options);
    const auto second = engine.Run(key, 10, 99, task);
    EXPECT_EQ(executed.load(), 10) << "resume re-executed recorded runs";
    EXPECT_EQ(second, first);
    // A different master seed derives different run seeds: all re-run.
    engine.Run(key, 10, 100, task);
    EXPECT_EQ(executed.load(), 20);
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- RunEngine

TEST(RunEngineTest, SeedsAreIndependentOfWorkerCount) {
  const auto task = [](int64_t r, uint64_t run_seed) -> std::vector<double> {
    EXPECT_EQ(run_seed, util::SplitSeed(2024, static_cast<uint64_t>(r)));
    // A nontrivial function of the run's own stream.
    util::Rng rng(run_seed);
    return {rng.Uniform(), static_cast<double>(rng.UniformInt(1000))};
  };
  exec::RunEngine::Options serial_options;
  serial_options.jobs = 1;
  exec::RunEngine serial(serial_options);
  exec::RunEngine::Options wide_options;
  wide_options.jobs = 8;
  exec::RunEngine wide(wide_options);
  const exec::RunKey key{"engine_test", 0};
  const auto a = serial.Run(key, 64, 2024, task);
  const auto b = wide.Run(key, 64, 2024, task);
  EXPECT_EQ(a, b);
  const auto ma = serial.RunMean(key, 64, 2024, task);
  const auto mb = wide.RunMean(key, 64, 2024, task);
  ASSERT_EQ(ma.size(), mb.size());
  for (size_t c = 0; c < ma.size(); ++c) {
    EXPECT_EQ(ma[c], mb[c]) << "column " << c << " not bit-identical";
  }
}

TEST(RunEngineTest, ReportsProgress) {
  std::atomic<int64_t> calls{0};
  std::atomic<int64_t> saw_total{0};
  exec::RunEngine::Options options;
  options.jobs = 4;
  options.progress = [&](const exec::RunKey& key, int64_t done,
                         int64_t total) {
    EXPECT_EQ(key.experiment, "progress_test");
    EXPECT_GE(done, 1);
    EXPECT_LE(done, total);
    calls.fetch_add(1);
    if (done == total) saw_total.fetch_add(1);
  };
  exec::RunEngine engine(options);
  engine.Run({"progress_test", 0}, 25, 1,
             [](int64_t, uint64_t) -> std::vector<double> { return {1.0}; });
  EXPECT_EQ(calls.load(), 25);
  EXPECT_EQ(saw_total.load(), 1);
}

// --------------------------------------- the property the subsystem exists
// for: AverageRuns is bit-identical for 1 and 8 jobs, on SPR plus two
// confidence-aware baselines.

TEST(AverageRunsDeterminismTest, EightJobsBitIdenticalToSerial) {
  // Small instance so the three algorithms stay fast: 24 items, k = 4.
  const auto dataset = data::MakeUniformLadder(24, 1.0, 2.0);
  judgment::ComparisonOptions options = bench::DefaultComparisonOptions();
  options.budget = 200;  // keep per-pair spend small
  core::SprOptions spr_options;
  spr_options.comparison = options;
  std::vector<std::unique_ptr<core::TopKAlgorithm>> algorithms;
  algorithms.push_back(std::make_unique<core::Spr>(spr_options));
  algorithms.push_back(std::make_unique<baselines::TournamentTree>(options));
  algorithms.push_back(std::make_unique<baselines::HeapSortTopK>(options));
  for (const auto& algorithm : algorithms) {
    const bench::Averages serial = bench::AverageRunsWithJobs(
        *dataset, algorithm.get(), 4, 12, 20170514, /*jobs_override=*/1);
    const bench::Averages parallel = bench::AverageRunsWithJobs(
        *dataset, algorithm.get(), 4, 12, 20170514, /*jobs_override=*/8);
    // EXPECT_EQ, not EXPECT_NEAR: the contract is bit-identical.
    EXPECT_EQ(serial.tmc, parallel.tmc) << algorithm->name();
    EXPECT_EQ(serial.rounds, parallel.rounds) << algorithm->name();
    EXPECT_EQ(serial.ndcg, parallel.ndcg) << algorithm->name();
    EXPECT_EQ(serial.precision, parallel.precision) << algorithm->name();
    EXPECT_GT(serial.tmc, 0.0) << algorithm->name();
  }
}

}  // namespace
}  // namespace crowdtopk
