// Tests for the deterministic simulation harness (src/sim,
// docs/SIMULATION.md): episode spec round-trip and normalisation, the
// loopback wire transport, a pinned seed-sweep regression, targeted chaos
// episodes (torn WAL tail, transitive cache reuse under worker faults,
// drain and idle timeout on simulated time), shrinking, and the mutation
// acceptance checks proving the harness catches injected determinism bugs.

#include <string>
#include <thread>
#include <vector>

#include "baselines/heap_sort.h"
#include "baselines/quick_select.h"
#include "data/generators.h"
#include "gtest/gtest.h"
#include "judgment/comparison.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "serve/arrival.h"
#include "serve/query_service.h"
#include "sim/chaos.h"
#include "sim/environment.h"
#include "sim/harness.h"
#include "sim/loopback.h"
#include "util/clock.h"
#include "util/random.h"
#include "util/status.h"

namespace crowdtopk::sim {
namespace {

std::string Scratch(const std::string& leaf) {
  return ::testing::TempDir() + "crowdtopk_sim_test_" + leaf;
}

// ----- episode spec --------------------------------------------------------

// The spec is the shrink/replay currency: every derived episode must
// survive ToSpec -> EpisodeFromSpec -> ToSpec byte-identically, or a
// printed repro line would replay a different episode than the one that
// failed.
TEST(ChaosSpecTest, SpecRoundTripsDerivedEpisodes) {
  for (uint64_t i = 0; i < 16; ++i) {
    const Episode e = DeriveEpisode(util::SplitSeed(20170514, i));
    const std::string spec = ToSpec(e);
    const util::StatusOr<Episode> parsed = EpisodeFromSpec(spec);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(ToSpec(parsed.value()), spec) << "seed index " << i;
  }
}

TEST(ChaosSpecTest, MalformedSpecsAreRejected) {
  EXPECT_FALSE(EpisodeFromSpec("nonsense").ok());
  EXPECT_FALSE(EpisodeFromSpec("seed=1,notaknob=2").ok());
  EXPECT_FALSE(EpisodeFromSpec("seed=banana").ok());
}

// DeriveEpisode output is already in range, so normalisation of a derived
// episode is the identity; hand-edited specs get clamped into the ranges
// the stack accepts.
TEST(ChaosSpecTest, NormalizeClampsHandEditedEpisodes) {
  const Episode derived = DeriveEpisode(7);
  EXPECT_EQ(ToSpec(NormalizeEpisode(derived)), ToSpec(derived));

  Episode wild = derived;
  wild.items = 100000;
  wild.k = 100001;  // must end up below items after both clamps
  wild.queries = -3;
  wild.jobs_b = 0;
  const Episode clamped = NormalizeEpisode(wild);
  EXPECT_LE(clamped.items, 64);
  EXPECT_GE(clamped.k, 1);
  EXPECT_LT(clamped.k, clamped.items);
  EXPECT_GE(clamped.queries, 1);
  EXPECT_GE(clamped.jobs_b, 1);
}

// ----- loopback wire transport --------------------------------------------

TEST(LoopbackTest, SeededDeliveryReassemblesEveryStream) {
  const FramedStream stream = FrameStream(SampleMessages(99, 16));
  ASSERT_EQ(stream.payloads.size(), 16u);
  for (uint64_t split = 0; split < 8; ++split) {
    const Delivery d = DeliverByteStream(stream.bytes, split);
    EXPECT_FALSE(d.corrupt);
    EXPECT_FALSE(d.oversized);
    EXPECT_EQ(d.payloads, stream.payloads) << "split seed " << split;
  }
}

TEST(LoopbackTest, CorruptionOperatorsHitTheirClassifications) {
  // Bit flip inside frame 3's CRC region: the reader must stop at kCorrupt
  // having delivered exactly the frames before the mangled one.
  FramedStream flipped = FrameStream(SampleMessages(7, 8));
  FlipBit(&flipped, 3, 11);
  Delivery d = DeliverByteStream(flipped.bytes, 1);
  EXPECT_TRUE(d.corrupt);
  ASSERT_EQ(d.payloads.size(), 3u);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(d.payloads[i], flipped.payloads[i]);

  // Truncated tail: no terminal error, just the surviving prefix.
  FramedStream torn = FrameStream(SampleMessages(7, 8));
  TruncateTail(&torn, 5);
  d = DeliverByteStream(torn.bytes, 1);
  EXPECT_FALSE(d.corrupt);
  EXPECT_FALSE(d.oversized);
  EXPECT_EQ(d.payloads, torn.payloads);  // TruncateTail pops the lost payload

  // Inflated length prefix: classified kOversized before the bogus length
  // is trusted.
  FramedStream inflated = FrameStream(SampleMessages(7, 8));
  InflateLength(&inflated, 2);
  d = DeliverByteStream(inflated.bytes, 1);
  EXPECT_TRUE(d.oversized);
  EXPECT_EQ(d.payloads.size(), 2u);
}

// ----- seed sweep regression ----------------------------------------------

// A slice of the CI sweep (tools/crowdtopk_sim --seeds 64) pinned to the
// default master seed: episode i is DeriveEpisode(SplitSeed(master, i)), so
// this covers exactly the first episodes CI replays. Any violation here is
// a real cross-layer determinism regression, reproducible with the spec the
// failure message carries.
TEST(SimHarnessTest, PinnedSeedSweepIsClean) {
  const SweepResult result = SweepSeeds(20170514, 6, Scratch("sweep"));
  EXPECT_EQ(result.episodes_run, 6);
  for (const SweepFailure& failure : result.failures) {
    ADD_FAILURE() << "episode " << failure.index << " spec "
                  << ToSpec(failure.episode) << " violated: "
                  << failure.violations[0].invariant << ": "
                  << failure.violations[0].detail;
  }
}

// ----- targeted episodes ---------------------------------------------------

// Torn WAL tail: crash at barrier 2, cut 9 bytes off the newest WAL
// segment, resume. Recovery must degrade gracefully to the last intact
// barrier and still reproduce the cold run bit-identically.
TEST(SimHarnessTest, TornWalTailRecoveryHoldsInvariants) {
  Episode e = DeriveEpisode(1);  // cache+persist episode, no value faults
  ASSERT_TRUE(e.persist_enabled);
  e.halt_after_barrier = 2;
  e.torn_tail_bytes = 9;
  const std::vector<Violation> violations =
      RunEpisode(e, Scratch("torn_tail"));
  for (const Violation& v : violations) {
    ADD_FAILURE() << v.invariant << ": " << v.detail;
  }
}

// Transitive cache reuse under worker faults: spammy workers answer, the
// cache composes single-hop inferred verdicts, and the serving layer must
// still satisfy queries. Asserts the scenario actually exercises the
// transitive path (inferred hits happen) instead of vacuously passing.
TEST(SimHarnessTest, TransitiveCacheHitUnderFault) {
  Episode e = DeriveEpisode(1);
  e.cache_enabled = true;
  e.cache_capacity = -1;
  e.transitivity = true;
  e.spammer_fraction = 0.1;
  e.queries = 6;
  const std::vector<Violation> violations =
      RunEpisode(e, Scratch("transitive"));
  for (const Violation& v : violations) {
    ADD_FAILURE() << v.invariant << ": " << v.detail;
  }

  // Direct replay through the serving stack to observe the inferred
  // counter the harness only checks for soundness. Transitive composition
  // is alpha-gated (alpha_ab + alpha_bc <= alpha_query), so same-alpha
  // queries can never compose: tight-alpha queries populate the cache
  // first, then loose-alpha queries arrive whose missing pairs the cache
  // may answer through a cached single hop.
  const auto dataset = MakeEpisodeDataset(e, 42);
  judgment::ComparisonOptions tight_options;
  tight_options.alpha = 0.01;
  tight_options.budget = 500;
  judgment::ComparisonOptions loose_options;
  loose_options.alpha = 0.05;
  loose_options.budget = 500;
  baselines::HeapSortTopK tight_heap(tight_options);
  baselines::QuickSelectTopK tight_quick(tight_options);
  baselines::HeapSortTopK loose_heap(loose_options);
  baselines::QuickSelectTopK loose_quick(loose_options);

  const int64_t tight_queries = 6, loose_queries = 4;
  std::vector<double> arrivals;
  std::vector<serve::QueryRequest> requests(tight_queries + loose_queries);
  for (size_t q = 0; q < requests.size(); ++q) {
    const bool tight = q < static_cast<size_t>(tight_queries);
    core::TopKAlgorithm* tight_algos[] = {&tight_heap, &tight_quick};
    core::TopKAlgorithm* loose_algos[] = {&loose_heap, &loose_quick};
    requests[q].algorithm = tight ? tight_algos[q % 2] : loose_algos[q % 2];
    requests[q].dataset = dataset.get();
    requests[q].k = e.k;
    arrivals.push_back(static_cast<double>(q));
  }
  serve::ServeOptions options;
  options.seed = 42;
  options.max_inflight = 1;  // serialize: every query sees all prior commits
  options.cache.enabled = true;
  options.cache.transitivity = true;
  serve::QueryService service(options);
  service.Replay(requests, arrivals);
  const cache::CacheStats stats = service.cache_stats();
  EXPECT_GT(stats.hits + stats.topups + stats.inferred, 0)
      << "cache never reused anything — the scenario is vacuous";
  EXPECT_GT(stats.inferred, 0)
      << "no transitively inferred verdict served; the transitive path "
         "was not exercised";
}

// Shard scatter + failover: the episode's trace routed over four local
// shards must merge to the 1-shard pure-column table byte-for-byte, and
// killing the first query's primary shard on its first sub-batch must
// lose no query while keeping re-dispatch and re-purchase bounded. The
// kill branch asserts internally that the injected death actually fired,
// so this cannot pass vacuously.
TEST(SimHarnessTest, ShardScatterAndFailoverHoldInvariants) {
  Episode e = DeriveEpisode(1);
  e.shards = 4;
  e.shard_kill = true;
  std::vector<Violation> violations;
  CheckShardScatter(NormalizeEpisode(e), &violations);
  for (const Violation& v : violations) {
    ADD_FAILURE() << v.invariant << ": " << v.detail;
  }
}

// ----- simulated time through the network stack ----------------------------

// Drain during in-flight work under an injected SimClock: the wall clock
// never drives any timeout, yet the accepted query completes and the drain
// returns. This is the script-controlled-time version of net_test's drain
// coverage.
TEST(SimNetTest, DrainCompletesInFlightUnderSimClock) {
  SimEnvironment env(20170514);
  net::ServerOptions options;
  options.port = 0;
  options.clock = env.clock();
  options.dataset_factory = [](const std::string& name,
                               uint64_t) -> std::unique_ptr<data::Dataset> {
    if (name != "tiny") return nullptr;
    return data::MakeUniformLadder(12, 2.0, 0.5);
  };
  net::Server server(options);
  ASSERT_TRUE(server.Start().ok());
  std::thread serve_thread([&server] { server.Serve(); });

  net::ClientOptions client_options;
  client_options.port = server.port();
  client_options.clock = env.clock();
  client_options.max_retries = 0;
  net::Client client(client_options);
  ASSERT_TRUE(client.Connect().ok());

  net::SubmitQuery query;
  query.dataset = "tiny";
  query.k = 3;
  query.algo = "spr";
  const util::StatusOr<int64_t> id = client.Submit(query);
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  server.RequestDrain();
  // Simulated time never advances past any deadline; the in-flight query
  // must still complete and be flushed before Serve() returns.
  const util::StatusOr<net::Result> result = client.AwaitResult(*id);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->items.size(), 3u);
  serve_thread.join();
}

// Idle-timeout on simulated seconds: a connection with no traffic is
// closed only when the *script* advances the clock past idle_timeout_ms —
// machine load can neither fire the timeout early nor hold it open.
TEST(SimNetTest, IdleTimeoutFiresOnSimulatedTimeOnly) {
  SimEnvironment env(20170514);
  net::ServerOptions options;
  options.port = 0;
  options.idle_timeout_ms = 5000;
  options.clock = env.clock();
  net::Server server(options);
  ASSERT_TRUE(server.Start().ok());
  std::thread serve_thread([&server] { server.Serve(); });

  net::ClientOptions idle_options;
  idle_options.port = server.port();
  idle_options.clock = env.clock();
  idle_options.max_retries = 0;
  net::Client idler(idle_options);
  ASSERT_TRUE(idler.Connect().ok());
  EXPECT_EQ(server.Stats().idle_closed, 0);

  env.AdvanceMillis(6000);  // past idle_timeout_ms, in simulated time
  // The event loop observes simulated-time advances on its short wall
  // tick; wait (bounded, wall time) for the close to land.
  for (int tick = 0; tick < 500 && server.Stats().idle_closed == 0; ++tick) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server.Stats().idle_closed, 1);

  server.RequestDrain();
  serve_thread.join();
}

// ----- mutation acceptance -------------------------------------------------

// The harness itself is under test here: deliberately broken determinism
// MUST produce violations, or a clean sweep proves nothing. Each mutation
// targets a different invariant family; the seeds are pinned to episodes
// known to expose them (docs/SIMULATION.md).

TEST(SimMutationTest, SeedDriftIsCaught) {
  Episode e = DeriveEpisode(1);
  e.mutation = "seed-drift";  // jobs_b replays under a perturbed seed
  const std::vector<Violation> violations =
      RunEpisode(e, Scratch("mut_drift"));
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].invariant, "jobs-bit-identity");
}

TEST(SimMutationTest, WireFlipIsCaught) {
  Episode e = DeriveEpisode(1);
  ASSERT_GE(e.wire_trials, 1);
  e.mutation = "wire-flip";  // undeclared bit flip in a clean wire trial
  const std::vector<Violation> violations =
      RunEpisode(e, Scratch("mut_wire"));
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].invariant, "wire-reassembly-identity");
}

TEST(SimMutationTest, CacheLeakIsCaught) {
  // This episode's workload overlaps pairs across queries, so one leaked
  // cache slot in the capacity-0 control run changes the purchase stream.
  Episode e = DeriveEpisode(13602764539300740607ULL);
  ASSERT_TRUE(e.cache_enabled);
  e.mutation = "cache-leak";
  const std::vector<Violation> violations =
      RunEpisode(e, Scratch("mut_leak"));
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].invariant, "cache-capacity0-identity");
}

// Shrinking a failing episode must preserve the failure while only ever
// disabling chaos dimensions or shrinking the workload — the minimal spec
// is the one a human debugs.
TEST(SimMutationTest, ShrinkKeepsFailureAndNeverGrows) {
  Episode e = DeriveEpisode(1);
  e.mutation = "seed-drift";
  std::vector<Violation> violations;
  const Episode minimal = ShrinkEpisode(e, Scratch("shrink"), &violations);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].invariant, "jobs-bit-identity");
  EXPECT_LE(minimal.queries, e.queries);
  EXPECT_LE(minimal.items, e.items);
  EXPECT_EQ(minimal.mutation, "seed-drift");  // the bug is not shrunk away
  // The replay line embeds the full spec of the minimal episode.
  EXPECT_NE(ReplayCommand(minimal).find(ToSpec(minimal)), std::string::npos);
}

}  // namespace
}  // namespace crowdtopk::sim
