// Tests for the network serving subsystem (src/net): wire-protocol codec
// round-trips, golden frame bytes, corrupt/truncated/oversized frame
// rejection, version-gated handshake, and end-to-end loopback serving
// including graceful drain.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/generators.h"
#include "gtest/gtest.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "serve/query_service.h"
#include "util/env.h"
#include "util/file_io.h"
#include "util/status.h"

namespace crowdtopk::net {
namespace {

// ----- codec ---------------------------------------------------------------

// One message of every type with non-default field values, so round-trip
// and golden coverage includes every encoder branch.
std::vector<NetMessage> SampleMessages() {
  std::vector<NetMessage> messages;
  NetMessage m;

  m.type = MessageType::kHello;
  messages.push_back(m);

  m = NetMessage();
  m.type = MessageType::kHelloAck;
  messages.push_back(m);

  m = NetMessage();
  m.type = MessageType::kSubmitQuery;
  m.submit.dataset = "peopleage";
  m.submit.k = 7;
  m.submit.algo = "spr";
  m.submit.alpha = 0.05;
  m.submit.budget = 500;
  m.submit.seed_stream = 77;  // v2: router-stamped global id
  messages.push_back(m);

  m = NetMessage();
  m.type = MessageType::kSubmitAck;
  m.submit_ack.query_id = 42;
  messages.push_back(m);

  m = NetMessage();
  m.type = MessageType::kStatusRequest;
  m.status_request.query_id = 42;
  messages.push_back(m);

  m = NetMessage();
  m.type = MessageType::kStatusReply;
  m.status_reply.query_id = 42;
  m.status_reply.state = QueryState::kRunning;
  messages.push_back(m);

  m = NetMessage();
  m.type = MessageType::kResult;
  m.result.query_id = 42;
  m.result.status_code = 0;
  m.result.reject_reason = 0;
  m.result.items = {9, 8, 7};
  m.result.precision_at_k = 1.0;
  m.result.total_microtasks = 1234;
  m.result.rounds = 17;
  m.result.latency_seconds = 321.5;
  m.result.queue_wait_seconds = 2.25;
  m.result.shard_id = 3;  // v2: executing shard
  messages.push_back(m);

  m = NetMessage();
  m.type = MessageType::kCancel;
  m.cancel.query_id = 43;
  messages.push_back(m);

  m = NetMessage();
  m.type = MessageType::kCancelAck;
  m.cancel_ack.query_id = 43;
  m.cancel_ack.cancelled = true;
  messages.push_back(m);

  m = NetMessage();
  m.type = MessageType::kStatsRequest;
  messages.push_back(m);

  m = NetMessage();
  m.type = MessageType::kStatsReply;
  m.stats_reply.draining = true;
  m.stats_reply.active_connections = 3;
  m.stats_reply.accepted_connections = 11;
  m.stats_reply.rejected_connections = 1;
  m.stats_reply.idle_closed = 2;
  m.stats_reply.frames_in = 100;
  m.stats_reply.frames_out = 101;
  m.stats_reply.bytes_in = 5000;
  m.stats_reply.bytes_out = 5001;
  m.stats_reply.crc_errors = 1;
  m.stats_reply.malformed_frames = 2;
  m.stats_reply.version_mismatches = 3;
  m.stats_reply.queries_submitted = 20;
  m.stats_reply.queries_completed = 18;
  m.stats_reply.queries_rejected = 2;
  m.stats_reply.queries_cancelled = 1;
  m.stats_reply.batches = 5;
  m.stats_reply.client_retries = 4;  // v2: upstream router traffic
  m.stats_reply.client_redials = 2;
  messages.push_back(m);

  m = NetMessage();
  m.type = MessageType::kError;
  m.error.code = ErrorCode::kQueueFull;
  m.error.query_id = 44;
  m.error.message = "admission queue full";
  messages.push_back(m);

  return messages;
}

void ExpectSameMessage(const NetMessage& a, const NetMessage& b) {
  ASSERT_EQ(a.type, b.type);
  // Spot-check the payload-bearing members; a full field-by-field equality
  // would just restate the codec.
  switch (a.type) {
    case MessageType::kSubmitQuery:
      EXPECT_EQ(a.submit.dataset, b.submit.dataset);
      EXPECT_EQ(a.submit.k, b.submit.k);
      EXPECT_EQ(a.submit.algo, b.submit.algo);
      EXPECT_DOUBLE_EQ(a.submit.alpha, b.submit.alpha);
      EXPECT_EQ(a.submit.budget, b.submit.budget);
      EXPECT_EQ(a.submit.seed_stream, b.submit.seed_stream);
      break;
    case MessageType::kResult:
      EXPECT_EQ(a.result.query_id, b.result.query_id);
      EXPECT_EQ(a.result.items, b.result.items);
      EXPECT_EQ(a.result.total_microtasks, b.result.total_microtasks);
      EXPECT_EQ(a.result.rounds, b.result.rounds);
      EXPECT_DOUBLE_EQ(a.result.latency_seconds, b.result.latency_seconds);
      EXPECT_DOUBLE_EQ(a.result.queue_wait_seconds,
                       b.result.queue_wait_seconds);
      EXPECT_EQ(a.result.shard_id, b.result.shard_id);
      break;
    case MessageType::kStatsReply:
      EXPECT_EQ(a.stats_reply.draining, b.stats_reply.draining);
      EXPECT_EQ(a.stats_reply.queries_submitted,
                b.stats_reply.queries_submitted);
      EXPECT_EQ(a.stats_reply.batches, b.stats_reply.batches);
      EXPECT_EQ(a.stats_reply.client_retries, b.stats_reply.client_retries);
      EXPECT_EQ(a.stats_reply.client_redials, b.stats_reply.client_redials);
      break;
    case MessageType::kError:
      EXPECT_EQ(a.error.code, b.error.code);
      EXPECT_EQ(a.error.query_id, b.error.query_id);
      EXPECT_EQ(a.error.message, b.error.message);
      break;
    default:
      break;
  }
}

TEST(NetProtocolTest, EveryMessageTypeRoundTrips) {
  for (const NetMessage& m : SampleMessages()) {
    const std::string payload = EncodeMessage(m);
    NetMessage decoded;
    ASSERT_TRUE(DecodeMessage(payload, &decoded))
        << "type " << static_cast<int>(m.type);
    ExpectSameMessage(m, decoded);
  }
}

TEST(NetProtocolTest, FrameReaderReassemblesByteByByte) {
  std::string stream;
  for (const NetMessage& m : SampleMessages()) stream += FrameMessage(m);
  FrameReader reader;
  std::vector<NetMessage> decoded;
  std::string payload;
  // Worst-case delivery: one byte per recv.
  for (const char c : stream) {
    reader.Append(&c, 1);
    for (;;) {
      const FrameReader::Next next = reader.Pop(&payload);
      if (next != FrameReader::Next::kFrame) {
        ASSERT_EQ(next, FrameReader::Next::kNeedMore);
        break;
      }
      NetMessage m;
      ASSERT_TRUE(DecodeMessage(payload, &m));
      decoded.push_back(m);
    }
  }
  const std::vector<NetMessage> expected = SampleMessages();
  ASSERT_EQ(decoded.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ExpectSameMessage(expected[i], decoded[i]);
  }
}

// The golden file pins the wire bytes of every message type: any codec or
// field-order change shows up as a reviewable binary diff. Regenerate with
// CROWDTOPK_UPDATE_GOLDEN=1.
TEST(NetProtocolTest, GoldenFrameBytes) {
  std::string stream;
  for (const NetMessage& m : SampleMessages()) stream += FrameMessage(m);

  const std::string golden_path =
      std::string(CROWDTOPK_GOLDEN_DIR) + "/net_frames.bin";
  if (util::GetEnvBool("CROWDTOPK_UPDATE_GOLDEN", false)) {
    ASSERT_TRUE(util::WriteFileAtomic(golden_path, stream).ok());
    GTEST_SKIP() << "golden updated: " << golden_path;
  }
  std::string golden;
  ASSERT_TRUE(util::ReadFileToString(golden_path, &golden).ok())
      << "missing " << golden_path
      << " — regenerate with CROWDTOPK_UPDATE_GOLDEN=1";
  EXPECT_EQ(stream, golden)
      << "wire bytes changed; if intentional, bump kProtocolVersion, "
         "regenerate with CROWDTOPK_UPDATE_GOLDEN=1, and commit";

  // The pinned bytes must also decode (golden is not write-only).
  FrameReader reader;
  reader.Append(golden);
  std::string payload;
  size_t frames = 0;
  while (reader.Pop(&payload) == FrameReader::Next::kFrame) {
    NetMessage m;
    ASSERT_TRUE(DecodeMessage(payload, &m));
    ++frames;
  }
  EXPECT_EQ(frames, SampleMessages().size());
}

// Round trip through the pinned bytes: decode every golden frame,
// re-encode the decoded message, and byte-diff the rebuilt stream against
// the golden. GoldenFrameBytes pins encode(fresh structs); this pins
// encode(decode(x)) == x, so a lossy decoder (a dropped field, a default
// silently substituted) fails even though fresh renders still match.
TEST(NetProtocolTest, GoldenFrameBytesReencodeByteIdentically) {
  if (util::GetEnvBool("CROWDTOPK_UPDATE_GOLDEN", false)) {
    GTEST_SKIP() << "goldens being regenerated; see GoldenFrameBytes";
  }
  const std::string golden_path =
      std::string(CROWDTOPK_GOLDEN_DIR) + "/net_frames.bin";
  std::string golden;
  ASSERT_TRUE(util::ReadFileToString(golden_path, &golden).ok())
      << "missing " << golden_path
      << " — regenerate with CROWDTOPK_UPDATE_GOLDEN=1";

  FrameReader reader;
  reader.Append(golden);
  std::string payload, rebuilt;
  size_t frames = 0;
  while (reader.Pop(&payload) == FrameReader::Next::kFrame) {
    NetMessage m;
    ASSERT_TRUE(DecodeMessage(payload, &m)) << "frame " << frames;
    rebuilt += FrameMessage(m);
    ++frames;
  }
  ASSERT_EQ(frames, SampleMessages().size());
  EXPECT_EQ(rebuilt, golden)
      << "decode -> encode is not the identity on the pinned wire bytes";
}

TEST(NetProtocolTest, TruncatedFrameNeedsMoreBytes) {
  const std::string frame = FrameMessage(SampleMessages()[2]);
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    FrameReader reader;
    reader.Append(frame.data(), cut);
    std::string payload;
    EXPECT_EQ(reader.Pop(&payload), FrameReader::Next::kNeedMore)
        << "cut at " << cut;
  }
}

TEST(NetProtocolTest, CorruptCrcIsRejected) {
  std::string frame = FrameMessage(SampleMessages()[2]);
  frame[frame.size() - 1] ^= 0x01;  // flip one payload bit
  FrameReader reader;
  reader.Append(frame);
  std::string payload;
  EXPECT_EQ(reader.Pop(&payload), FrameReader::Next::kCorrupt);
}

TEST(NetProtocolTest, CorruptLengthPrefixIsOversized) {
  std::string frame = FrameMessage(SampleMessages()[2]);
  const uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(frame.data(), &huge, sizeof(huge));
  FrameReader reader;
  reader.Append(frame);
  std::string payload;
  EXPECT_EQ(reader.Pop(&payload), FrameReader::Next::kOversized);
}

TEST(NetProtocolTest, MalformedPayloadsAreRejected) {
  NetMessage out;
  EXPECT_FALSE(DecodeMessage("", &out));             // no type byte
  EXPECT_FALSE(DecodeMessage("\x7f", &out));         // unknown type
  EXPECT_FALSE(DecodeMessage("\x00", &out));         // type 0 is invalid
  std::string truncated = EncodeMessage(SampleMessages()[2]);
  truncated.resize(truncated.size() - 3);            // body cut short
  EXPECT_FALSE(DecodeMessage(truncated, &out));
  std::string padded = EncodeMessage(SampleMessages()[2]);
  padded += "xx";                                    // trailing garbage
  EXPECT_FALSE(DecodeMessage(padded, &out));
}

TEST(NetProtocolTest, ResultItemCountIsBoundsChecked) {
  // A corrupt item count larger than the remaining bytes must be rejected
  // before any allocation happens.
  util::Encoder enc;
  enc.PutU8(static_cast<uint8_t>(MessageType::kResult));
  enc.PutI64(1);            // query_id
  enc.PutU32(0);            // status_code
  enc.PutU8(0);             // reject_reason
  enc.PutString("");        // message
  enc.PutU32(0x40000000u);  // claimed item count: 1G items
  NetMessage out;
  EXPECT_FALSE(DecodeMessage(enc.Take(), &out));
}

TEST(NetProtocolTest, MapRejectReasonIsMachineReadable) {
  EXPECT_EQ(MapRejectReason(serve::RejectReason::kQueueFull),
            ErrorCode::kQueueFull);
  EXPECT_EQ(MapRejectReason(serve::RejectReason::kNone), ErrorCode::kInternal);
}

// ----- end-to-end loopback -------------------------------------------------

// Starts a real Server on an ephemeral loopback port with a tiny injected
// dataset (12 items) so queries finish in milliseconds; Serve() runs on a
// background thread until StopServer() drains it.
class NetE2ETest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options) {
    options.port = 0;
    options.seed = 20170514;
    options.idle_timeout_ms = options.idle_timeout_ms == 60000
                                  ? 10000
                                  : options.idle_timeout_ms;
    options.dataset_factory = [](const std::string& name,
                                 uint64_t) -> std::unique_ptr<data::Dataset> {
      if (name != "tiny") return nullptr;
      return data::MakeUniformLadder(12, 2.0, 0.5);
    };
    server_ = std::make_unique<Server>(options);
    ASSERT_TRUE(server_->Start().ok());
    serve_thread_ = std::thread([this] { server_->Serve(); });
  }

  void StopServer() {
    if (!server_) return;
    server_->RequestDrain();
    if (serve_thread_.joinable()) serve_thread_.join();
  }

  void TearDown() override { StopServer(); }

  ClientOptions MakeClientOptions() const {
    ClientOptions options;
    options.port = server_->port();
    options.max_retries = 0;  // tests assert on first responses
    return options;
  }

  SubmitQuery TinyQuery(const std::string& algo = "spr") const {
    SubmitQuery q;
    q.dataset = "tiny";
    q.k = 3;
    q.algo = algo;
    return q;
  }

  std::unique_ptr<Server> server_;
  std::thread serve_thread_;
};

TEST_F(NetE2ETest, SubmitAwaitRoundTrip) {
  StartServer(ServerOptions());
  Client client(MakeClientOptions());
  ASSERT_TRUE(client.Connect().ok());

  const util::StatusOr<int64_t> id = client.Submit(TinyQuery());
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  const util::StatusOr<Result> result = client.AwaitResult(*id);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->query_id, *id);
  EXPECT_EQ(result->status_code,
            static_cast<uint32_t>(util::StatusCode::kOk));
  EXPECT_EQ(result->items.size(), 3u);
  // MakeUniformLadder puts the top items at the highest ids; precision is
  // against that ground truth.
  EXPECT_GT(result->precision_at_k, 0.0);
  EXPECT_GT(result->total_microtasks, 0);
  EXPECT_GT(result->latency_seconds, 0.0);

  // The finished query is remembered as done, and its stats counted.
  const util::StatusOr<QueryState> state = client.GetQueryState(*id);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, QueryState::kDone);
  const util::StatusOr<StatsReply> stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->queries_submitted, 1);
  EXPECT_EQ(stats->queries_completed, 1);
  EXPECT_GE(stats->batches, 1);
}

TEST_F(NetE2ETest, ResultsAreDeterministicPerBatchIndex) {
  // Two servers with the same seed serve identical first submissions:
  // batch 0 is a pure function of (options, seed, request).
  Result results[2];
  for (int round = 0; round < 2; ++round) {
    StartServer(ServerOptions());
    Client client(MakeClientOptions());
    ASSERT_TRUE(client.Connect().ok());
    const util::StatusOr<int64_t> id = client.Submit(TinyQuery());
    ASSERT_TRUE(id.ok());
    util::StatusOr<Result> result = client.AwaitResult(*id);
    ASSERT_TRUE(result.ok());
    results[round] = std::move(*result);
    StopServer();
    server_.reset();
  }
  EXPECT_EQ(results[0].items, results[1].items);
  EXPECT_EQ(results[0].total_microtasks, results[1].total_microtasks);
  EXPECT_EQ(results[0].rounds, results[1].rounds);
  EXPECT_DOUBLE_EQ(results[0].latency_seconds, results[1].latency_seconds);
}

TEST_F(NetE2ETest, UnknownDatasetAndAlgorithmAreClientErrors) {
  StartServer(ServerOptions());
  Client client(MakeClientOptions());
  ASSERT_TRUE(client.Connect().ok());

  SubmitQuery bad_dataset = TinyQuery();
  bad_dataset.dataset = "no-such-dataset";
  util::StatusOr<int64_t> id = client.Submit(bad_dataset);
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), util::StatusCode::kInvalidArgument);

  SubmitQuery bad_algo = TinyQuery("no-such-algo");
  id = client.Submit(bad_algo);
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), util::StatusCode::kInvalidArgument);

  SubmitQuery bad_k = TinyQuery();
  bad_k.k = 0;
  id = client.Submit(bad_k);
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), util::StatusCode::kInvalidArgument);

  // The connection survives rejected submissions: a good query still runs.
  id = client.Submit(TinyQuery());
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_TRUE(client.AwaitResult(*id).ok());
}

TEST_F(NetE2ETest, QueueFullRejectionCarriesMachineReadableCode) {
  ServerOptions options;
  options.max_queue = 0;  // reject every submission at admission
  StartServer(options);
  Client client(MakeClientOptions());
  ASSERT_TRUE(client.Connect().ok());
  const util::StatusOr<int64_t> id = client.Submit(TinyQuery());
  ASSERT_FALSE(id.ok());
  // kQueueFull maps to ResourceExhausted — asserted on the code, never the
  // message text.
  EXPECT_EQ(id.status().code(), util::StatusCode::kResourceExhausted);
}

TEST_F(NetE2ETest, CancelUnknownOrFinishedQueryReturnsFalse) {
  StartServer(ServerOptions());
  Client client(MakeClientOptions());
  ASSERT_TRUE(client.Connect().ok());

  util::StatusOr<bool> cancelled = client.Cancel(999);
  ASSERT_TRUE(cancelled.ok());
  EXPECT_FALSE(*cancelled);
  const util::StatusOr<QueryState> unknown = client.GetQueryState(999);
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(*unknown, QueryState::kUnknown);

  const util::StatusOr<int64_t> id = client.Submit(TinyQuery());
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(client.AwaitResult(*id).ok());
  cancelled = client.Cancel(*id);
  ASSERT_TRUE(cancelled.ok());
  EXPECT_FALSE(*cancelled);  // already done, not cancellable
}

TEST_F(NetE2ETest, DrainRejectsNewWhileCompletingInFlight) {
  StartServer(ServerOptions());
  Client submitter(MakeClientOptions());
  ASSERT_TRUE(submitter.Connect().ok());

  // The latecomer handshakes *before* the drain so its submit frame races
  // only the drain flag, never the (stopped) acceptor.
  ClientOptions late_options = MakeClientOptions();
  late_options.request_timeout_ms = 5000;
  Client latecomer(late_options);
  ASSERT_TRUE(latecomer.Connect().ok());

  // Accepted before the drain: the SubmitAck proves admission.
  const util::StatusOr<int64_t> id = submitter.Submit(TinyQuery("heapsort"));
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  server_->RequestDrain();

  // New work is refused with UNAVAILABLE while the drain runs; if the
  // drain already finished, the connection was closed, which the client
  // also surfaces as UNAVAILABLE.
  const util::StatusOr<int64_t> rejected = latecomer.Submit(TinyQuery());
  if (rejected.ok()) {
    // Tiny race window: the submit frame may have been parsed before the
    // drain flag flipped. Then it is in-flight work and must complete.
    EXPECT_TRUE(latecomer.AwaitResult(*rejected).ok());
  } else {
    EXPECT_EQ(rejected.status().code(), util::StatusCode::kUnavailable);
  }

  // The accepted query still completes and its result is delivered.
  const util::StatusOr<Result> result = submitter.AwaitResult(*id);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->status_code, static_cast<uint32_t>(util::StatusCode::kOk));
  EXPECT_EQ(result->items.size(), 3u);

  if (serve_thread_.joinable()) serve_thread_.join();
}

TEST_F(NetE2ETest, ConnectionLimitGreetsWithUnavailable) {
  ServerOptions options;
  options.max_connections = 1;
  StartServer(options);
  Client first(MakeClientOptions());
  ASSERT_TRUE(first.Connect().ok());
  Client second(MakeClientOptions());
  const util::Status status = second.Connect();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kUnavailable);
  // The admitted connection is unaffected.
  const util::StatusOr<int64_t> id = first.Submit(TinyQuery());
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(first.AwaitResult(*id).ok());
}

// Raw-socket helper for protocol-violation tests the Client cannot express.
class RawConn {
 public:
  explicit RawConn(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  void SendRaw(const std::string& bytes) {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }

  // Reads one frame (5s cap); false on EOF/timeout.
  bool ReadMessage(NetMessage* out) {
    std::string payload;
    for (int spins = 0; spins < 500; ++spins) {
      if (reader_.Pop(&payload) == FrameReader::Next::kFrame) {
        return DecodeMessage(payload, out);
      }
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, 10) <= 0) continue;
      char buf[4096];
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return false;
      reader_.Append(buf, static_cast<size_t>(n));
    }
    return false;
  }

  // True once the server closes the connection (EOF observed).
  bool AwaitEof() {
    for (int spins = 0; spins < 500; ++spins) {
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, 10) <= 0) continue;
      char buf[4096];
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n == 0) return true;
      if (n < 0) return false;
    }
    return false;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  FrameReader reader_;
};

TEST_F(NetE2ETest, VersionMismatchIsRefusedAndConnectionClosed) {
  StartServer(ServerOptions());
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  NetMessage hello;
  hello.type = MessageType::kHello;
  hello.hello.version = kProtocolVersion + 7;
  conn.SendRaw(FrameMessage(hello));
  NetMessage reply;
  ASSERT_TRUE(conn.ReadMessage(&reply));
  ASSERT_EQ(reply.type, MessageType::kError);
  EXPECT_EQ(reply.error.code, ErrorCode::kVersionMismatch);
  EXPECT_TRUE(conn.AwaitEof());
  EXPECT_EQ(server_->Stats().version_mismatches, 1);
}

// The previous protocol generation's pinned bytes (net_frames_v1.bin,
// frozen when kProtocolVersion moved to 2) must stay refusable: the first
// frame is a v1 kHello, and a v2 server answers it with a version-
// mismatch error and hangs up. This is the compatibility contract the
// header documents — version-gated, not forward-compatible.
TEST_F(NetE2ETest, V1GoldenHelloIsRefused) {
  std::string v1_stream;
  ASSERT_TRUE(util::ReadFileToString(
                  std::string(CROWDTOPK_GOLDEN_DIR) + "/net_frames_v1.bin",
                  &v1_stream)
                  .ok());
  FrameReader reader;
  reader.Append(v1_stream);
  std::string payload;
  ASSERT_EQ(reader.Pop(&payload), FrameReader::Next::kFrame);
  NetMessage v1_hello;
  ASSERT_TRUE(DecodeMessage(payload, &v1_hello));
  ASSERT_EQ(v1_hello.type, MessageType::kHello);
  ASSERT_EQ(v1_hello.hello.magic, kNetMagic);
  ASSERT_LT(v1_hello.hello.version, kProtocolVersion);

  StartServer(ServerOptions());
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  conn.SendRaw(FramePayload(payload));
  NetMessage reply;
  ASSERT_TRUE(conn.ReadMessage(&reply));
  ASSERT_EQ(reply.type, MessageType::kError);
  EXPECT_EQ(reply.error.code, ErrorCode::kVersionMismatch);
  EXPECT_TRUE(conn.AwaitEof());
  EXPECT_EQ(server_->Stats().version_mismatches, 1);
}

TEST_F(NetE2ETest, CorruptFrameClosesConnectionWithoutCrashing) {
  StartServer(ServerOptions());
  {
    RawConn conn(server_->port());
    ASSERT_TRUE(conn.connected());
    std::string frame = FrameMessage(NetMessage{});
    frame[frame.size() - 1] ^= 0x01;
    conn.SendRaw(frame);
    NetMessage reply;
    ASSERT_TRUE(conn.ReadMessage(&reply));
    ASSERT_EQ(reply.type, MessageType::kError);
    EXPECT_EQ(reply.error.code, ErrorCode::kMalformed);
    EXPECT_TRUE(conn.AwaitEof());
  }
  {
    // Oversized length prefix: also an unrecoverable stream error.
    RawConn conn(server_->port());
    ASSERT_TRUE(conn.connected());
    util::Encoder enc;
    enc.PutU32(kMaxFramePayload + 1);
    enc.PutU32(0);
    conn.SendRaw(enc.Take());
    NetMessage reply;
    ASSERT_TRUE(conn.ReadMessage(&reply));
    ASSERT_EQ(reply.type, MessageType::kError);
    EXPECT_EQ(reply.error.code, ErrorCode::kMalformed);
    EXPECT_TRUE(conn.AwaitEof());
  }
  EXPECT_GE(server_->Stats().crc_errors, 1);
  EXPECT_GE(server_->Stats().malformed_frames, 1);

  // The server is still healthy: a well-behaved client round-trips.
  Client client(MakeClientOptions());
  ASSERT_TRUE(client.Connect().ok());
  const util::StatusOr<int64_t> id = client.Submit(TinyQuery());
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(client.AwaitResult(*id).ok());
}

TEST_F(NetE2ETest, SubmitBeforeHandshakeIsMalformed) {
  StartServer(ServerOptions());
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  NetMessage submit;
  submit.type = MessageType::kSubmitQuery;
  submit.submit = TinyQuery();
  conn.SendRaw(FrameMessage(submit));
  NetMessage reply;
  ASSERT_TRUE(conn.ReadMessage(&reply));
  ASSERT_EQ(reply.type, MessageType::kError);
  EXPECT_EQ(reply.error.code, ErrorCode::kMalformed);
  EXPECT_TRUE(conn.AwaitEof());
}

}  // namespace
}  // namespace crowdtopk::net
