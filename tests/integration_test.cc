// Cross-module integration tests: full queries on the generated datasets,
// determinism, budget/quality interplay, worker-pool robustness, latency
// bounds, and the one-sided interval extension.

#include <algorithm>
#include <memory>
#include <set>

#include "baselines/heap_sort.h"
#include "baselines/quick_select.h"
#include "baselines/tournament_tree.h"
#include "core/latency_bounds.h"
#include "core/select_reference.h"
#include "core/sorting.h"
#include "core/spr.h"
#include "crowd/platform.h"
#include "crowd/workers.h"
#include "data/generators.h"
#include "data/subset_dataset.h"
#include "gtest/gtest.h"
#include "metrics/ranking_metrics.h"

namespace crowdtopk {
namespace {

judgment::ComparisonOptions FastOptions() {
  judgment::ComparisonOptions options;
  options.alpha = 0.05;
  options.budget = 400;
  options.min_workload = 30;
  options.batch_size = 30;
  return options;
}

// ------------------------------------------- End-to-end on every dataset

class EveryDatasetTest : public ::testing::TestWithParam<const char*> {};

TEST_P(EveryDatasetTest, SprAnswersValidlyOnSubset) {
  auto full = data::MakeByName(GetParam(), 11);
  util::Rng rng(5);
  const int64_t n = std::min<int64_t>(80, full->num_items());
  auto subset = data::RandomSubset(full.get(), n, &rng);
  crowd::CrowdPlatform platform(subset.get(), 77);
  core::SprOptions options;
  options.comparison = FastOptions();
  core::Spr spr(options);
  const core::TopKResult result = spr.Run(&platform, 8);
  ASSERT_EQ(result.items.size(), 8u);
  std::set<crowd::ItemId> unique(result.items.begin(), result.items.end());
  EXPECT_EQ(unique.size(), 8u);
  EXPECT_GT(result.total_microtasks, 0);
  EXPECT_GT(result.rounds, 0);
  // Far better than a random 8-subset (expected NDCG of random ~ 0.1).
  EXPECT_GT(metrics::Ndcg(*subset, result.items, 8), 0.35);
}

INSTANTIATE_TEST_SUITE_P(Datasets, EveryDatasetTest,
                         ::testing::Values("imdb", "book", "jester", "photo",
                                           "peopleage"));

// ------------------------------------------------------------ Determinism

TEST(DeterminismTest, IdenticalSeedsGiveIdenticalRuns) {
  auto dataset = data::MakeJesterLike(3);
  core::SprOptions options;
  options.comparison = FastOptions();
  core::Spr spr(options);

  crowd::CrowdPlatform a(dataset.get(), 123);
  const core::TopKResult ra = spr.Run(&a, 7);
  crowd::CrowdPlatform b(dataset.get(), 123);
  const core::TopKResult rb = spr.Run(&b, 7);
  EXPECT_EQ(ra.items, rb.items);
  EXPECT_EQ(ra.total_microtasks, rb.total_microtasks);
  EXPECT_EQ(ra.rounds, rb.rounds);
}

TEST(DeterminismTest, DifferentSeedsUsuallyDifferInCost) {
  auto dataset = data::MakeJesterLike(3);
  core::SprOptions options;
  options.comparison = FastOptions();
  core::Spr spr(options);
  crowd::CrowdPlatform a(dataset.get(), 1);
  crowd::CrowdPlatform b(dataset.get(), 2);
  const auto ra = spr.Run(&a, 7);
  const auto rb = spr.Run(&b, 7);
  EXPECT_NE(ra.total_microtasks, rb.total_microtasks);
}

// ------------------------------------------------- Quality vs budget knob

TEST(BudgetQualityTest, LargerBudgetNeverMuchWorse) {
  auto dataset = data::MakeUniformLadder(60, 1.0, 6.0);
  double ndcg_small = 0.0, ndcg_large = 0.0;
  for (int r = 0; r < 6; ++r) {
    for (int64_t budget : {60, 2000}) {
      judgment::ComparisonOptions options = FastOptions();
      options.budget = budget;
      core::SprOptions spr_options;
      spr_options.comparison = options;
      core::Spr spr(spr_options);
      crowd::CrowdPlatform platform(dataset.get(), 900 + r);
      const auto result = spr.Run(&platform, 8);
      (budget == 60 ? ndcg_small : ndcg_large) +=
          metrics::Ndcg(*dataset, result.items, 8);
    }
  }
  // Fig. 13's story: accuracy needs a sufficient B.
  EXPECT_GT(ndcg_large, ndcg_small);
}

// ---------------------------------------------------- Worker-pool wrapper

TEST(WorkerPoolTest, ScaleOnlyDistortionPreservesSign) {
  auto dataset = data::MakeUniformLadder(10, 5.0, 1.0);
  std::vector<crowd::WorkerProfile> workers(3);
  workers[0].scale = 0.5;
  workers[1].scale = 1.0;
  workers[2].scale = 2.0;
  crowd::WorkerPoolOracle pool(dataset.get(), workers);
  util::Rng rng(4);
  // Item 9 vs item 0: gap 45, noise 1 -> sign always positive, any scale.
  for (int t = 0; t < 200; ++t) {
    EXPECT_GT(pool.PreferenceJudgment(9, 0, &rng), 0.0);
  }
}

TEST(WorkerPoolTest, SpammersAddVarianceNotBias) {
  auto dataset = data::MakeUniformLadder(4, 5.0, 1.0);
  crowd::WorkerPoolOptions options;
  options.spammer_fraction = 0.5;
  options.num_workers = 100;
  crowd::WorkerPoolOracle pool(dataset.get(), options, 9);
  util::Rng rng(10);
  double sum = 0.0;
  const int trials = 40000;
  for (int t = 0; t < trials; ++t) {
    sum += pool.PreferenceJudgment(3, 0, &rng);
  }
  const double mean = sum / trials;
  // Half the mass is the true signal (mean (15)/20 = 0.75), half is
  // uniform noise (mean 0) => overall ~0.375.
  EXPECT_NEAR(mean, 0.375, 0.03);
}

TEST(WorkerPoolTest, SprSurvivesMildDistortion) {
  auto dataset = data::MakeUniformLadder(50, 8.0, 4.0);
  crowd::WorkerPoolOptions pool_options;
  pool_options.scale_spread = 1.5;
  pool_options.max_noise = 0.05;
  pool_options.spammer_fraction = 0.05;
  crowd::WorkerPoolOracle pool(dataset.get(), pool_options, 12);
  crowd::CrowdPlatform platform(&pool, 13);
  core::SprOptions options;
  options.comparison = FastOptions();
  core::Spr spr(options);
  const auto result = spr.Run(&platform, 5);
  // Quality is scored against the clean ground truth.
  EXPECT_GT(metrics::Ndcg(*dataset, result.items, 5), 0.8);
}

TEST(WorkerPoolTest, GradedJudgmentsStayInRange) {
  auto dataset = data::MakeUniformLadder(6, 5.0, 2.0);
  crowd::WorkerPoolOptions options;
  options.scale_spread = 3.0;
  options.max_noise = 0.5;
  options.spammer_fraction = 0.2;
  crowd::WorkerPoolOracle pool(dataset.get(), options, 14);
  util::Rng rng(15);
  for (int t = 0; t < 500; ++t) {
    const double g = pool.GradedJudgment(t % 6, &rng);
    EXPECT_GE(g, 0.0);
    EXPECT_LE(g, 1.0);
  }
}

// --------------------------------------------------- One-sided intervals

TEST(OneSidedTest, EffectiveAlphaDoubles) {
  judgment::ComparisonOptions options;
  options.alpha = 0.02;
  EXPECT_DOUBLE_EQ(judgment::EffectiveAlpha(options), 0.02);
  options.one_sided = true;
  EXPECT_DOUBLE_EQ(judgment::EffectiveAlpha(options), 0.04);
  options.alpha = 0.4;
  EXPECT_DOUBLE_EQ(judgment::EffectiveAlpha(options), 0.5);  // clamped
}

TEST(OneSidedTest, SavesWorkloadAtSameNominalConfidence) {
  data::GaussianDataset pair("pair", {0.0, 1.0}, 3.0, 10.0);
  int64_t symmetric = 0, one_sided = 0;
  for (bool half : {false, true}) {
    judgment::ComparisonOptions options = FastOptions();
    options.one_sided = half;
    options.budget = 1 << 20;
    options.batch_size = 1;
    stats::TCriticalCache t_cache(judgment::EffectiveAlpha(options));
    crowd::CrowdPlatform platform(&pair, 21);
    int64_t total = 0;
    for (int t = 0; t < 60; ++t) {
      judgment::ComparisonSession session(1, 0, &options, &t_cache);
      session.RunToCompletion(&platform);
      total += session.workload();
    }
    (half ? one_sided : symmetric) = total;
  }
  EXPECT_LT(one_sided, symmetric);
}

TEST(OneSidedTest, AccuracyStillMeetsConfidence) {
  data::GaussianDataset pair("pair", {0.0, 1.0}, 2.0, 10.0);
  judgment::ComparisonOptions options = FastOptions();
  options.one_sided = true;
  options.alpha = 0.10;
  options.budget = 1 << 20;
  stats::TCriticalCache t_cache(judgment::EffectiveAlpha(options));
  crowd::CrowdPlatform platform(&pair, 22);
  int correct = 0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    judgment::ComparisonSession session(1, 0, &options, &t_cache);
    if (session.RunToCompletion(&platform) ==
        crowd::ComparisonOutcome::kLeftWins) {
      ++correct;
    }
  }
  EXPECT_GE(correct / static_cast<double>(trials), 0.85);
}

// ------------------------------------------------------- Latency bounds

TEST(LatencyBoundsTest, HeapSortDominates) {
  const judgment::ComparisonOptions options = FastOptions();
  const core::LatencyBounds bounds =
      core::ComputeLatencyBounds(1000, 10, options, 80, 15);
  EXPECT_GT(bounds.heap_sort, 10 * bounds.tournament_tree);
  EXPECT_GT(bounds.tournament_tree, bounds.quick_select);
  EXPECT_GT(bounds.quick_select, 0.0);
  EXPECT_GT(bounds.spr, 0.0);
}

TEST(LatencyBoundsTest, MeasuredHeapSortWithinBound) {
  auto dataset = data::MakeUniformLadder(120, 2.0, 6.0);
  const judgment::ComparisonOptions options = FastOptions();
  crowd::CrowdPlatform platform(dataset.get(), 31);
  baselines::HeapSortTopK heap(options);
  const auto result = heap.Run(&platform, 10);
  const core::LatencyBounds bounds =
      core::ComputeLatencyBounds(120, 10, options, 1, 1);
  // The bound counts worst-case B/eta rounds per sequential comparison.
  EXPECT_LE(static_cast<double>(result.rounds), bounds.heap_sort * 4.0);
  EXPECT_GE(static_cast<double>(result.rounds), 100.0);
}

TEST(LatencyBoundsTest, SprMeasuredRoundsReasonable) {
  auto dataset = data::MakeUniformLadder(200, 4.0, 5.0);
  const judgment::ComparisonOptions options = FastOptions();
  const auto plan = core::PlanReferenceSelection(200, 10, 1.5, 200);
  const core::LatencyBounds bounds =
      core::ComputeLatencyBounds(200, 10, options, plan.x, plan.m);
  crowd::CrowdPlatform platform(dataset.get(), 32);
  core::SprOptions spr_options;
  spr_options.comparison = options;
  core::Spr spr(spr_options);
  const auto result = spr.Run(&platform, 10);
  // The best-case bound is optimistic (it ignores sorting corrections), but
  // the measured rounds must stay far below the sequential methods' scale.
  EXPECT_LT(static_cast<double>(result.rounds), bounds.heap_sort);
  (void)bounds;
}

// -------------------------------------------- Judgment reuse across phases

TEST(ReuseTest, ResortingTheAnswerIsFree) {
  auto dataset = data::MakeUniformLadder(40, 5.0, 3.0);
  crowd::CrowdPlatform platform(dataset.get(), 41);
  judgment::ComparisonCache cache(FastOptions());
  core::SprOptions options;
  options.comparison = FastOptions();
  core::Spr spr(options);

  std::vector<crowd::ItemId> items(40);
  for (int i = 0; i < 40; ++i) items[i] = i;
  std::vector<crowd::ItemId> answer =
      spr.RunOnItems(items, 5, &cache, &platform);
  const int64_t first_cost = platform.total_microtasks();
  const int64_t first_rounds = platform.rounds();
  // Every adjacent pair of the answer was confirmed during the ranking
  // phase, so re-sorting it through the same cache buys nothing
  // ("the results of comparisons are always reusable", Section 5.3).
  std::vector<crowd::ItemId> resorted = answer;
  core::ConfirmSort(&resorted, &cache, &platform);
  EXPECT_EQ(resorted, answer);
  EXPECT_EQ(platform.total_microtasks(), first_cost);
  EXPECT_EQ(platform.rounds(), first_rounds);
  // A second full query still reuses at least the partition judgments that
  // share the (random) new reference -- it can only be cheaper than or as
  // expensive as the first.
  spr.RunOnItems(items, 5, &cache, &platform);
  const int64_t second_cost = platform.total_microtasks() - first_cost;
  EXPECT_LE(second_cost, first_cost);
}

}  // namespace
}  // namespace crowdtopk
