# Empty dependencies file for judgment_test.
# This may be replaced when dependencies are built.
