file(REMOVE_RECURSE
  "CMakeFiles/judgment_test.dir/judgment_test.cc.o"
  "CMakeFiles/judgment_test.dir/judgment_test.cc.o.d"
  "judgment_test"
  "judgment_test.pdb"
  "judgment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/judgment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
