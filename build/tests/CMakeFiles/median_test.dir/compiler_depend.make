# Empty compiler generated dependencies file for median_test.
# This may be replaced when dependencies are built.
