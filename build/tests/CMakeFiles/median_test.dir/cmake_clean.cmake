file(REMOVE_RECURSE
  "CMakeFiles/median_test.dir/median_test.cc.o"
  "CMakeFiles/median_test.dir/median_test.cc.o.d"
  "median_test"
  "median_test.pdb"
  "median_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/median_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
