
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/data_test.cc" "tests/CMakeFiles/data_test.dir/data_test.cc.o" "gcc" "tests/CMakeFiles/data_test.dir/data_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/metrics/CMakeFiles/crowdtopk_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/crowdtopk_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/crowdtopk_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/crowdtopk_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/crowdtopk_data.dir/DependInfo.cmake"
  "/root/repo/build/src/judgment/CMakeFiles/crowdtopk_judgment.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/crowdtopk_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/crowd/CMakeFiles/crowdtopk_crowd.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/crowdtopk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
