file(REMOVE_RECURSE
  "CMakeFiles/crowdtopk_util.dir/env.cc.o"
  "CMakeFiles/crowdtopk_util.dir/env.cc.o.d"
  "CMakeFiles/crowdtopk_util.dir/random.cc.o"
  "CMakeFiles/crowdtopk_util.dir/random.cc.o.d"
  "CMakeFiles/crowdtopk_util.dir/status.cc.o"
  "CMakeFiles/crowdtopk_util.dir/status.cc.o.d"
  "CMakeFiles/crowdtopk_util.dir/table.cc.o"
  "CMakeFiles/crowdtopk_util.dir/table.cc.o.d"
  "libcrowdtopk_util.a"
  "libcrowdtopk_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdtopk_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
