file(REMOVE_RECURSE
  "libcrowdtopk_util.a"
)
