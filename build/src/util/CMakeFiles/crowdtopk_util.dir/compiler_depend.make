# Empty compiler generated dependencies file for crowdtopk_util.
# This may be replaced when dependencies are built.
