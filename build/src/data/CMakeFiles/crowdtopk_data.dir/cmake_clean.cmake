file(REMOVE_RECURSE
  "CMakeFiles/crowdtopk_data.dir/dataset.cc.o"
  "CMakeFiles/crowdtopk_data.dir/dataset.cc.o.d"
  "CMakeFiles/crowdtopk_data.dir/gaussian_dataset.cc.o"
  "CMakeFiles/crowdtopk_data.dir/gaussian_dataset.cc.o.d"
  "CMakeFiles/crowdtopk_data.dir/generators.cc.o"
  "CMakeFiles/crowdtopk_data.dir/generators.cc.o.d"
  "CMakeFiles/crowdtopk_data.dir/histogram_dataset.cc.o"
  "CMakeFiles/crowdtopk_data.dir/histogram_dataset.cc.o.d"
  "CMakeFiles/crowdtopk_data.dir/io.cc.o"
  "CMakeFiles/crowdtopk_data.dir/io.cc.o.d"
  "CMakeFiles/crowdtopk_data.dir/pair_record_dataset.cc.o"
  "CMakeFiles/crowdtopk_data.dir/pair_record_dataset.cc.o.d"
  "CMakeFiles/crowdtopk_data.dir/subset_dataset.cc.o"
  "CMakeFiles/crowdtopk_data.dir/subset_dataset.cc.o.d"
  "CMakeFiles/crowdtopk_data.dir/user_matrix_dataset.cc.o"
  "CMakeFiles/crowdtopk_data.dir/user_matrix_dataset.cc.o.d"
  "libcrowdtopk_data.a"
  "libcrowdtopk_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdtopk_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
