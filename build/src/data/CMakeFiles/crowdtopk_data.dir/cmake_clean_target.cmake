file(REMOVE_RECURSE
  "libcrowdtopk_data.a"
)
