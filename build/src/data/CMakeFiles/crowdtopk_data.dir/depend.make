# Empty dependencies file for crowdtopk_data.
# This may be replaced when dependencies are built.
