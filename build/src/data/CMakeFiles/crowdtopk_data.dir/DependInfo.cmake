
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/crowdtopk_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/crowdtopk_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/gaussian_dataset.cc" "src/data/CMakeFiles/crowdtopk_data.dir/gaussian_dataset.cc.o" "gcc" "src/data/CMakeFiles/crowdtopk_data.dir/gaussian_dataset.cc.o.d"
  "/root/repo/src/data/generators.cc" "src/data/CMakeFiles/crowdtopk_data.dir/generators.cc.o" "gcc" "src/data/CMakeFiles/crowdtopk_data.dir/generators.cc.o.d"
  "/root/repo/src/data/histogram_dataset.cc" "src/data/CMakeFiles/crowdtopk_data.dir/histogram_dataset.cc.o" "gcc" "src/data/CMakeFiles/crowdtopk_data.dir/histogram_dataset.cc.o.d"
  "/root/repo/src/data/io.cc" "src/data/CMakeFiles/crowdtopk_data.dir/io.cc.o" "gcc" "src/data/CMakeFiles/crowdtopk_data.dir/io.cc.o.d"
  "/root/repo/src/data/pair_record_dataset.cc" "src/data/CMakeFiles/crowdtopk_data.dir/pair_record_dataset.cc.o" "gcc" "src/data/CMakeFiles/crowdtopk_data.dir/pair_record_dataset.cc.o.d"
  "/root/repo/src/data/subset_dataset.cc" "src/data/CMakeFiles/crowdtopk_data.dir/subset_dataset.cc.o" "gcc" "src/data/CMakeFiles/crowdtopk_data.dir/subset_dataset.cc.o.d"
  "/root/repo/src/data/user_matrix_dataset.cc" "src/data/CMakeFiles/crowdtopk_data.dir/user_matrix_dataset.cc.o" "gcc" "src/data/CMakeFiles/crowdtopk_data.dir/user_matrix_dataset.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crowd/CMakeFiles/crowdtopk_crowd.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/crowdtopk_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/crowdtopk_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
