file(REMOVE_RECURSE
  "CMakeFiles/crowdtopk_opt.dir/lbfgs.cc.o"
  "CMakeFiles/crowdtopk_opt.dir/lbfgs.cc.o.d"
  "libcrowdtopk_opt.a"
  "libcrowdtopk_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdtopk_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
