# Empty dependencies file for crowdtopk_opt.
# This may be replaced when dependencies are built.
