file(REMOVE_RECURSE
  "libcrowdtopk_opt.a"
)
