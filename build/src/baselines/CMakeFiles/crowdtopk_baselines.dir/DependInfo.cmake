
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/crowd_bt.cc" "src/baselines/CMakeFiles/crowdtopk_baselines.dir/crowd_bt.cc.o" "gcc" "src/baselines/CMakeFiles/crowdtopk_baselines.dir/crowd_bt.cc.o.d"
  "/root/repo/src/baselines/heap_sort.cc" "src/baselines/CMakeFiles/crowdtopk_baselines.dir/heap_sort.cc.o" "gcc" "src/baselines/CMakeFiles/crowdtopk_baselines.dir/heap_sort.cc.o.d"
  "/root/repo/src/baselines/hybrid.cc" "src/baselines/CMakeFiles/crowdtopk_baselines.dir/hybrid.cc.o" "gcc" "src/baselines/CMakeFiles/crowdtopk_baselines.dir/hybrid.cc.o.d"
  "/root/repo/src/baselines/pbr.cc" "src/baselines/CMakeFiles/crowdtopk_baselines.dir/pbr.cc.o" "gcc" "src/baselines/CMakeFiles/crowdtopk_baselines.dir/pbr.cc.o.d"
  "/root/repo/src/baselines/quick_select.cc" "src/baselines/CMakeFiles/crowdtopk_baselines.dir/quick_select.cc.o" "gcc" "src/baselines/CMakeFiles/crowdtopk_baselines.dir/quick_select.cc.o.d"
  "/root/repo/src/baselines/tournament_tree.cc" "src/baselines/CMakeFiles/crowdtopk_baselines.dir/tournament_tree.cc.o" "gcc" "src/baselines/CMakeFiles/crowdtopk_baselines.dir/tournament_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/crowdtopk_core.dir/DependInfo.cmake"
  "/root/repo/build/src/judgment/CMakeFiles/crowdtopk_judgment.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/crowdtopk_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/crowd/CMakeFiles/crowdtopk_crowd.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/crowdtopk_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/crowdtopk_util.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/crowdtopk_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
