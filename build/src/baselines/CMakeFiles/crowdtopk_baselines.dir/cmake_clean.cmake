file(REMOVE_RECURSE
  "CMakeFiles/crowdtopk_baselines.dir/crowd_bt.cc.o"
  "CMakeFiles/crowdtopk_baselines.dir/crowd_bt.cc.o.d"
  "CMakeFiles/crowdtopk_baselines.dir/heap_sort.cc.o"
  "CMakeFiles/crowdtopk_baselines.dir/heap_sort.cc.o.d"
  "CMakeFiles/crowdtopk_baselines.dir/hybrid.cc.o"
  "CMakeFiles/crowdtopk_baselines.dir/hybrid.cc.o.d"
  "CMakeFiles/crowdtopk_baselines.dir/pbr.cc.o"
  "CMakeFiles/crowdtopk_baselines.dir/pbr.cc.o.d"
  "CMakeFiles/crowdtopk_baselines.dir/quick_select.cc.o"
  "CMakeFiles/crowdtopk_baselines.dir/quick_select.cc.o.d"
  "CMakeFiles/crowdtopk_baselines.dir/tournament_tree.cc.o"
  "CMakeFiles/crowdtopk_baselines.dir/tournament_tree.cc.o.d"
  "libcrowdtopk_baselines.a"
  "libcrowdtopk_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdtopk_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
