file(REMOVE_RECURSE
  "libcrowdtopk_baselines.a"
)
