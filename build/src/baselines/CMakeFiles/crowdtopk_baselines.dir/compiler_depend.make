# Empty compiler generated dependencies file for crowdtopk_baselines.
# This may be replaced when dependencies are built.
