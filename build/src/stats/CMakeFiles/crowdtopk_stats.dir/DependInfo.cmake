
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/anytime.cc" "src/stats/CMakeFiles/crowdtopk_stats.dir/anytime.cc.o" "gcc" "src/stats/CMakeFiles/crowdtopk_stats.dir/anytime.cc.o.d"
  "/root/repo/src/stats/binomial.cc" "src/stats/CMakeFiles/crowdtopk_stats.dir/binomial.cc.o" "gcc" "src/stats/CMakeFiles/crowdtopk_stats.dir/binomial.cc.o.d"
  "/root/repo/src/stats/hoeffding.cc" "src/stats/CMakeFiles/crowdtopk_stats.dir/hoeffding.cc.o" "gcc" "src/stats/CMakeFiles/crowdtopk_stats.dir/hoeffding.cc.o.d"
  "/root/repo/src/stats/normal.cc" "src/stats/CMakeFiles/crowdtopk_stats.dir/normal.cc.o" "gcc" "src/stats/CMakeFiles/crowdtopk_stats.dir/normal.cc.o.d"
  "/root/repo/src/stats/running_stats.cc" "src/stats/CMakeFiles/crowdtopk_stats.dir/running_stats.cc.o" "gcc" "src/stats/CMakeFiles/crowdtopk_stats.dir/running_stats.cc.o.d"
  "/root/repo/src/stats/special_functions.cc" "src/stats/CMakeFiles/crowdtopk_stats.dir/special_functions.cc.o" "gcc" "src/stats/CMakeFiles/crowdtopk_stats.dir/special_functions.cc.o.d"
  "/root/repo/src/stats/student_t.cc" "src/stats/CMakeFiles/crowdtopk_stats.dir/student_t.cc.o" "gcc" "src/stats/CMakeFiles/crowdtopk_stats.dir/student_t.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/crowdtopk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
