file(REMOVE_RECURSE
  "CMakeFiles/crowdtopk_stats.dir/anytime.cc.o"
  "CMakeFiles/crowdtopk_stats.dir/anytime.cc.o.d"
  "CMakeFiles/crowdtopk_stats.dir/binomial.cc.o"
  "CMakeFiles/crowdtopk_stats.dir/binomial.cc.o.d"
  "CMakeFiles/crowdtopk_stats.dir/hoeffding.cc.o"
  "CMakeFiles/crowdtopk_stats.dir/hoeffding.cc.o.d"
  "CMakeFiles/crowdtopk_stats.dir/normal.cc.o"
  "CMakeFiles/crowdtopk_stats.dir/normal.cc.o.d"
  "CMakeFiles/crowdtopk_stats.dir/running_stats.cc.o"
  "CMakeFiles/crowdtopk_stats.dir/running_stats.cc.o.d"
  "CMakeFiles/crowdtopk_stats.dir/special_functions.cc.o"
  "CMakeFiles/crowdtopk_stats.dir/special_functions.cc.o.d"
  "CMakeFiles/crowdtopk_stats.dir/student_t.cc.o"
  "CMakeFiles/crowdtopk_stats.dir/student_t.cc.o.d"
  "libcrowdtopk_stats.a"
  "libcrowdtopk_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdtopk_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
