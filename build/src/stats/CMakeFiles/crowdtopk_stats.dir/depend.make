# Empty dependencies file for crowdtopk_stats.
# This may be replaced when dependencies are built.
