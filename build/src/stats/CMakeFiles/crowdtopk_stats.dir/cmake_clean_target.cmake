file(REMOVE_RECURSE
  "libcrowdtopk_stats.a"
)
