file(REMOVE_RECURSE
  "libcrowdtopk_judgment.a"
)
