
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/judgment/cache.cc" "src/judgment/CMakeFiles/crowdtopk_judgment.dir/cache.cc.o" "gcc" "src/judgment/CMakeFiles/crowdtopk_judgment.dir/cache.cc.o.d"
  "/root/repo/src/judgment/comparison.cc" "src/judgment/CMakeFiles/crowdtopk_judgment.dir/comparison.cc.o" "gcc" "src/judgment/CMakeFiles/crowdtopk_judgment.dir/comparison.cc.o.d"
  "/root/repo/src/judgment/graded.cc" "src/judgment/CMakeFiles/crowdtopk_judgment.dir/graded.cc.o" "gcc" "src/judgment/CMakeFiles/crowdtopk_judgment.dir/graded.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crowd/CMakeFiles/crowdtopk_crowd.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/crowdtopk_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/crowdtopk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
