file(REMOVE_RECURSE
  "CMakeFiles/crowdtopk_judgment.dir/cache.cc.o"
  "CMakeFiles/crowdtopk_judgment.dir/cache.cc.o.d"
  "CMakeFiles/crowdtopk_judgment.dir/comparison.cc.o"
  "CMakeFiles/crowdtopk_judgment.dir/comparison.cc.o.d"
  "CMakeFiles/crowdtopk_judgment.dir/graded.cc.o"
  "CMakeFiles/crowdtopk_judgment.dir/graded.cc.o.d"
  "libcrowdtopk_judgment.a"
  "libcrowdtopk_judgment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdtopk_judgment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
