# Empty dependencies file for crowdtopk_judgment.
# This may be replaced when dependencies are built.
