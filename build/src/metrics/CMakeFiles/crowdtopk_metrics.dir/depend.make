# Empty dependencies file for crowdtopk_metrics.
# This may be replaced when dependencies are built.
