file(REMOVE_RECURSE
  "libcrowdtopk_metrics.a"
)
