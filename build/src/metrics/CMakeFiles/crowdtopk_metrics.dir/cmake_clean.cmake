file(REMOVE_RECURSE
  "CMakeFiles/crowdtopk_metrics.dir/ranking_metrics.cc.o"
  "CMakeFiles/crowdtopk_metrics.dir/ranking_metrics.cc.o.d"
  "libcrowdtopk_metrics.a"
  "libcrowdtopk_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdtopk_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
