# Empty dependencies file for crowdtopk_crowd.
# This may be replaced when dependencies are built.
