
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crowd/oracle.cc" "src/crowd/CMakeFiles/crowdtopk_crowd.dir/oracle.cc.o" "gcc" "src/crowd/CMakeFiles/crowdtopk_crowd.dir/oracle.cc.o.d"
  "/root/repo/src/crowd/platform.cc" "src/crowd/CMakeFiles/crowdtopk_crowd.dir/platform.cc.o" "gcc" "src/crowd/CMakeFiles/crowdtopk_crowd.dir/platform.cc.o.d"
  "/root/repo/src/crowd/simulator.cc" "src/crowd/CMakeFiles/crowdtopk_crowd.dir/simulator.cc.o" "gcc" "src/crowd/CMakeFiles/crowdtopk_crowd.dir/simulator.cc.o.d"
  "/root/repo/src/crowd/workers.cc" "src/crowd/CMakeFiles/crowdtopk_crowd.dir/workers.cc.o" "gcc" "src/crowd/CMakeFiles/crowdtopk_crowd.dir/workers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/crowdtopk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
