file(REMOVE_RECURSE
  "CMakeFiles/crowdtopk_crowd.dir/oracle.cc.o"
  "CMakeFiles/crowdtopk_crowd.dir/oracle.cc.o.d"
  "CMakeFiles/crowdtopk_crowd.dir/platform.cc.o"
  "CMakeFiles/crowdtopk_crowd.dir/platform.cc.o.d"
  "CMakeFiles/crowdtopk_crowd.dir/simulator.cc.o"
  "CMakeFiles/crowdtopk_crowd.dir/simulator.cc.o.d"
  "CMakeFiles/crowdtopk_crowd.dir/workers.cc.o"
  "CMakeFiles/crowdtopk_crowd.dir/workers.cc.o.d"
  "libcrowdtopk_crowd.a"
  "libcrowdtopk_crowd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdtopk_crowd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
