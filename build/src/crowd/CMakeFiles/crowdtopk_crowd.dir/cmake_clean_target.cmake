file(REMOVE_RECURSE
  "libcrowdtopk_crowd.a"
)
