
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/infimum.cc" "src/core/CMakeFiles/crowdtopk_core.dir/infimum.cc.o" "gcc" "src/core/CMakeFiles/crowdtopk_core.dir/infimum.cc.o.d"
  "/root/repo/src/core/interval_ranking.cc" "src/core/CMakeFiles/crowdtopk_core.dir/interval_ranking.cc.o" "gcc" "src/core/CMakeFiles/crowdtopk_core.dir/interval_ranking.cc.o.d"
  "/root/repo/src/core/latency_bounds.cc" "src/core/CMakeFiles/crowdtopk_core.dir/latency_bounds.cc.o" "gcc" "src/core/CMakeFiles/crowdtopk_core.dir/latency_bounds.cc.o.d"
  "/root/repo/src/core/median.cc" "src/core/CMakeFiles/crowdtopk_core.dir/median.cc.o" "gcc" "src/core/CMakeFiles/crowdtopk_core.dir/median.cc.o.d"
  "/root/repo/src/core/partition.cc" "src/core/CMakeFiles/crowdtopk_core.dir/partition.cc.o" "gcc" "src/core/CMakeFiles/crowdtopk_core.dir/partition.cc.o.d"
  "/root/repo/src/core/select_reference.cc" "src/core/CMakeFiles/crowdtopk_core.dir/select_reference.cc.o" "gcc" "src/core/CMakeFiles/crowdtopk_core.dir/select_reference.cc.o.d"
  "/root/repo/src/core/sorting.cc" "src/core/CMakeFiles/crowdtopk_core.dir/sorting.cc.o" "gcc" "src/core/CMakeFiles/crowdtopk_core.dir/sorting.cc.o.d"
  "/root/repo/src/core/spr.cc" "src/core/CMakeFiles/crowdtopk_core.dir/spr.cc.o" "gcc" "src/core/CMakeFiles/crowdtopk_core.dir/spr.cc.o.d"
  "/root/repo/src/core/tournament.cc" "src/core/CMakeFiles/crowdtopk_core.dir/tournament.cc.o" "gcc" "src/core/CMakeFiles/crowdtopk_core.dir/tournament.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/judgment/CMakeFiles/crowdtopk_judgment.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/crowdtopk_data.dir/DependInfo.cmake"
  "/root/repo/build/src/crowd/CMakeFiles/crowdtopk_crowd.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/crowdtopk_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/crowdtopk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
