# Empty compiler generated dependencies file for crowdtopk_core.
# This may be replaced when dependencies are built.
