file(REMOVE_RECURSE
  "libcrowdtopk_core.a"
)
