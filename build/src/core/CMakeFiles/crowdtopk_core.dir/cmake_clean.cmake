file(REMOVE_RECURSE
  "CMakeFiles/crowdtopk_core.dir/infimum.cc.o"
  "CMakeFiles/crowdtopk_core.dir/infimum.cc.o.d"
  "CMakeFiles/crowdtopk_core.dir/interval_ranking.cc.o"
  "CMakeFiles/crowdtopk_core.dir/interval_ranking.cc.o.d"
  "CMakeFiles/crowdtopk_core.dir/latency_bounds.cc.o"
  "CMakeFiles/crowdtopk_core.dir/latency_bounds.cc.o.d"
  "CMakeFiles/crowdtopk_core.dir/median.cc.o"
  "CMakeFiles/crowdtopk_core.dir/median.cc.o.d"
  "CMakeFiles/crowdtopk_core.dir/partition.cc.o"
  "CMakeFiles/crowdtopk_core.dir/partition.cc.o.d"
  "CMakeFiles/crowdtopk_core.dir/select_reference.cc.o"
  "CMakeFiles/crowdtopk_core.dir/select_reference.cc.o.d"
  "CMakeFiles/crowdtopk_core.dir/sorting.cc.o"
  "CMakeFiles/crowdtopk_core.dir/sorting.cc.o.d"
  "CMakeFiles/crowdtopk_core.dir/spr.cc.o"
  "CMakeFiles/crowdtopk_core.dir/spr.cc.o.d"
  "CMakeFiles/crowdtopk_core.dir/tournament.cc.o"
  "CMakeFiles/crowdtopk_core.dir/tournament.cc.o.d"
  "libcrowdtopk_core.a"
  "libcrowdtopk_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdtopk_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
