file(REMOVE_RECURSE
  "CMakeFiles/fig11_vary_budget.dir/bench/fig11_vary_budget.cc.o"
  "CMakeFiles/fig11_vary_budget.dir/bench/fig11_vary_budget.cc.o.d"
  "bench/fig11_vary_budget"
  "bench/fig11_vary_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_vary_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
