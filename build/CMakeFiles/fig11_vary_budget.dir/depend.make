# Empty dependencies file for fig11_vary_budget.
# This may be replaced when dependencies are built.
