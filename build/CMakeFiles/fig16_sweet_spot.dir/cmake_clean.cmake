file(REMOVE_RECURSE
  "CMakeFiles/fig16_sweet_spot.dir/bench/fig16_sweet_spot.cc.o"
  "CMakeFiles/fig16_sweet_spot.dir/bench/fig16_sweet_spot.cc.o.d"
  "bench/fig16_sweet_spot"
  "bench/fig16_sweet_spot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_sweet_spot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
