# Empty dependencies file for fig16_sweet_spot.
# This may be replaced when dependencies are built.
