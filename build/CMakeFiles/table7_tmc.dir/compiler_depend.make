# Empty compiler generated dependencies file for table7_tmc.
# This may be replaced when dependencies are built.
