file(REMOVE_RECURSE
  "CMakeFiles/table7_tmc.dir/bench/table7_tmc.cc.o"
  "CMakeFiles/table7_tmc.dir/bench/table7_tmc.cc.o.d"
  "bench/table7_tmc"
  "bench/table7_tmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_tmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
