file(REMOVE_RECURSE
  "CMakeFiles/ablation_one_sided.dir/bench/ablation_one_sided.cc.o"
  "CMakeFiles/ablation_one_sided.dir/bench/ablation_one_sided.cc.o.d"
  "bench/ablation_one_sided"
  "bench/ablation_one_sided.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_one_sided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
