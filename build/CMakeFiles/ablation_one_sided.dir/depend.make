# Empty dependencies file for ablation_one_sided.
# This may be replaced when dependencies are built.
