file(REMOVE_RECURSE
  "CMakeFiles/table3_judgment_models.dir/bench/table3_judgment_models.cc.o"
  "CMakeFiles/table3_judgment_models.dir/bench/table3_judgment_models.cc.o.d"
  "bench/table3_judgment_models"
  "bench/table3_judgment_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_judgment_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
