file(REMOVE_RECURSE
  "CMakeFiles/fig12_summary.dir/bench/fig12_summary.cc.o"
  "CMakeFiles/fig12_summary.dir/bench/fig12_summary.cc.o.d"
  "bench/fig12_summary"
  "bench/fig12_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
