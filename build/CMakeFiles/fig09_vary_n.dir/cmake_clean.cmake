file(REMOVE_RECURSE
  "CMakeFiles/fig09_vary_n.dir/bench/fig09_vary_n.cc.o"
  "CMakeFiles/fig09_vary_n.dir/bench/fig09_vary_n.cc.o.d"
  "bench/fig09_vary_n"
  "bench/fig09_vary_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_vary_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
