# Empty dependencies file for fig09_vary_n.
# This may be replaced when dependencies are built.
