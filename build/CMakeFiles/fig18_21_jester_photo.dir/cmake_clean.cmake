file(REMOVE_RECURSE
  "CMakeFiles/fig18_21_jester_photo.dir/bench/fig18_21_jester_photo.cc.o"
  "CMakeFiles/fig18_21_jester_photo.dir/bench/fig18_21_jester_photo.cc.o.d"
  "bench/fig18_21_jester_photo"
  "bench/fig18_21_jester_photo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_21_jester_photo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
