# Empty compiler generated dependencies file for fig18_21_jester_photo.
# This may be replaced when dependencies are built.
