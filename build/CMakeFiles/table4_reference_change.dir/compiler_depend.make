# Empty compiler generated dependencies file for table4_reference_change.
# This may be replaced when dependencies are built.
