file(REMOVE_RECURSE
  "CMakeFiles/table4_reference_change.dir/bench/table4_reference_change.cc.o"
  "CMakeFiles/table4_reference_change.dir/bench/table4_reference_change.cc.o.d"
  "bench/table4_reference_change"
  "bench/table4_reference_change.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_reference_change.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
