# Empty compiler generated dependencies file for ablation_reference_selection.
# This may be replaced when dependencies are built.
