file(REMOVE_RECURSE
  "CMakeFiles/ablation_reference_selection.dir/bench/ablation_reference_selection.cc.o"
  "CMakeFiles/ablation_reference_selection.dir/bench/ablation_reference_selection.cc.o.d"
  "bench/ablation_reference_selection"
  "bench/ablation_reference_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reference_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
