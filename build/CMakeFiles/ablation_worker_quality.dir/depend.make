# Empty dependencies file for ablation_worker_quality.
# This may be replaced when dependencies are built.
