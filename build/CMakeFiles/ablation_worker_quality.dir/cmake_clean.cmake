file(REMOVE_RECURSE
  "CMakeFiles/ablation_worker_quality.dir/bench/ablation_worker_quality.cc.o"
  "CMakeFiles/ablation_worker_quality.dir/bench/ablation_worker_quality.cc.o.d"
  "bench/ablation_worker_quality"
  "bench/ablation_worker_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_worker_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
