file(REMOVE_RECURSE
  "CMakeFiles/ablation_anytime_validity.dir/bench/ablation_anytime_validity.cc.o"
  "CMakeFiles/ablation_anytime_validity.dir/bench/ablation_anytime_validity.cc.o.d"
  "bench/ablation_anytime_validity"
  "bench/ablation_anytime_validity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_anytime_validity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
