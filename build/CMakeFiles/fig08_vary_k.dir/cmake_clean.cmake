file(REMOVE_RECURSE
  "CMakeFiles/fig08_vary_k.dir/bench/fig08_vary_k.cc.o"
  "CMakeFiles/fig08_vary_k.dir/bench/fig08_vary_k.cc.o.d"
  "bench/fig08_vary_k"
  "bench/fig08_vary_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_vary_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
