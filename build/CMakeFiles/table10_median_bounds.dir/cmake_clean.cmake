file(REMOVE_RECURSE
  "CMakeFiles/table10_median_bounds.dir/bench/table10_median_bounds.cc.o"
  "CMakeFiles/table10_median_bounds.dir/bench/table10_median_bounds.cc.o.d"
  "bench/table10_median_bounds"
  "bench/table10_median_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_median_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
