# Empty dependencies file for table10_median_bounds.
# This may be replaced when dependencies are built.
