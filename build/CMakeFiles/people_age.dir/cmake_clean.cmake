file(REMOVE_RECURSE
  "CMakeFiles/people_age.dir/bench/people_age.cc.o"
  "CMakeFiles/people_age.dir/bench/people_age.cc.o.d"
  "bench/people_age"
  "bench/people_age.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/people_age.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
