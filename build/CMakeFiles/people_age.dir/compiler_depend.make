# Empty compiler generated dependencies file for people_age.
# This may be replaced when dependencies are built.
