file(REMOVE_RECURSE
  "CMakeFiles/fig10_vary_confidence.dir/bench/fig10_vary_confidence.cc.o"
  "CMakeFiles/fig10_vary_confidence.dir/bench/fig10_vary_confidence.cc.o.d"
  "bench/fig10_vary_confidence"
  "bench/fig10_vary_confidence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_vary_confidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
