file(REMOVE_RECURSE
  "CMakeFiles/fig15_nb_minus_n.dir/bench/fig15_nb_minus_n.cc.o"
  "CMakeFiles/fig15_nb_minus_n.dir/bench/fig15_nb_minus_n.cc.o.d"
  "bench/fig15_nb_minus_n"
  "bench/fig15_nb_minus_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_nb_minus_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
