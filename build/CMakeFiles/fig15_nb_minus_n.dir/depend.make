# Empty dependencies file for fig15_nb_minus_n.
# This may be replaced when dependencies are built.
