# Empty dependencies file for ablation_interval_refinement.
# This may be replaced when dependencies are built.
