file(REMOVE_RECURSE
  "CMakeFiles/ablation_interval_refinement.dir/bench/ablation_interval_refinement.cc.o"
  "CMakeFiles/ablation_interval_refinement.dir/bench/ablation_interval_refinement.cc.o.d"
  "bench/ablation_interval_refinement"
  "bench/ablation_interval_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_interval_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
