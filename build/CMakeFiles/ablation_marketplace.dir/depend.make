# Empty dependencies file for ablation_marketplace.
# This may be replaced when dependencies are built.
