file(REMOVE_RECURSE
  "CMakeFiles/ablation_marketplace.dir/bench/ablation_marketplace.cc.o"
  "CMakeFiles/ablation_marketplace.dir/bench/ablation_marketplace.cc.o.d"
  "bench/ablation_marketplace"
  "bench/ablation_marketplace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_marketplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
