file(REMOVE_RECURSE
  "CMakeFiles/fig14_nonconfidence.dir/bench/fig14_nonconfidence.cc.o"
  "CMakeFiles/fig14_nonconfidence.dir/bench/fig14_nonconfidence.cc.o.d"
  "bench/fig14_nonconfidence"
  "bench/fig14_nonconfidence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_nonconfidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
