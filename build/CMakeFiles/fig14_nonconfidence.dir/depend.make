# Empty dependencies file for fig14_nonconfidence.
# This may be replaced when dependencies are built.
