file(REMOVE_RECURSE
  "CMakeFiles/micro_stats.dir/bench/micro_stats.cc.o"
  "CMakeFiles/micro_stats.dir/bench/micro_stats.cc.o.d"
  "bench/micro_stats"
  "bench/micro_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
