# Empty dependencies file for fig17_stein_vs_student.
# This may be replaced when dependencies are built.
