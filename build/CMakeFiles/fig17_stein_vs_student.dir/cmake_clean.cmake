file(REMOVE_RECURSE
  "CMakeFiles/fig17_stein_vs_student.dir/bench/fig17_stein_vs_student.cc.o"
  "CMakeFiles/fig17_stein_vs_student.dir/bench/fig17_stein_vs_student.cc.o.d"
  "bench/fig17_stein_vs_student"
  "bench/fig17_stein_vs_student.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_stein_vs_student.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
