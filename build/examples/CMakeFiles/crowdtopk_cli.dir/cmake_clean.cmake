file(REMOVE_RECURSE
  "CMakeFiles/crowdtopk_cli.dir/crowdtopk_cli.cc.o"
  "CMakeFiles/crowdtopk_cli.dir/crowdtopk_cli.cc.o.d"
  "crowdtopk_cli"
  "crowdtopk_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdtopk_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
