# Empty dependencies file for crowdtopk_cli.
# This may be replaced when dependencies are built.
