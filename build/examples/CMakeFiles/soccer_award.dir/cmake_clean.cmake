file(REMOVE_RECURSE
  "CMakeFiles/soccer_award.dir/soccer_award.cc.o"
  "CMakeFiles/soccer_award.dir/soccer_award.cc.o.d"
  "soccer_award"
  "soccer_award.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soccer_award.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
