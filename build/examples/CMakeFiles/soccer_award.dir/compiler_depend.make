# Empty compiler generated dependencies file for soccer_award.
# This may be replaced when dependencies are built.
