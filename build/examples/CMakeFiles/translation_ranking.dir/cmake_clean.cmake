file(REMOVE_RECURSE
  "CMakeFiles/translation_ranking.dir/translation_ranking.cc.o"
  "CMakeFiles/translation_ranking.dir/translation_ranking.cc.o.d"
  "translation_ranking"
  "translation_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translation_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
