# Empty compiler generated dependencies file for translation_ranking.
# This may be replaced when dependencies are built.
