# Empty compiler generated dependencies file for movie_topk.
# This may be replaced when dependencies are built.
