file(REMOVE_RECURSE
  "CMakeFiles/movie_topk.dir/movie_topk.cc.o"
  "CMakeFiles/movie_topk.dir/movie_topk.cc.o.d"
  "movie_topk"
  "movie_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movie_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
