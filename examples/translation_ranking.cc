// Example: ranking candidate translations -- the paper's machine-translation
// motivation (Zaidan & Callison-Burch; Google Translate / Duolingo style).
//
// 120 candidate translations of a sentence are ranked by bilingual workers.
// The example contrasts three strategies on the same simulated crowd:
//   1. plain SPR (confidence-aware pairwise preferences),
//   2. HybridSPR (cheap graded filter, then SPR on the shortlist),
//   3. CrowdBT with the same budget as SPR (binary votes + BTL fit).
//
//   $ ./build/examples/translation_ranking

#include <cstdio>
#include <vector>

#include "baselines/crowd_bt.h"
#include "baselines/hybrid.h"
#include "core/spr.h"
#include "crowd/platform.h"
#include "data/gaussian_dataset.h"
#include "metrics/ranking_metrics.h"
#include "util/random.h"
#include "util/table.h"

int main() {
  using namespace crowdtopk;

  // Fluency scores of 120 machine translations: a few adequate candidates,
  // a long tail of garbled ones (two quality clusters).
  util::Rng gen(7);
  std::vector<double> fluency;
  for (int i = 0; i < 20; ++i) fluency.push_back(gen.Gaussian(8.0, 0.7));
  for (int i = 0; i < 100; ++i) fluency.push_back(gen.Gaussian(4.5, 1.3));
  data::GaussianDataset translations("translations", std::move(fluency),
                                     /*noise_stddev=*/2.0,
                                     /*score_scale=*/10.0);

  const int64_t k = 5;
  judgment::ComparisonOptions comparison;
  comparison.alpha = 0.05;
  comparison.budget = 800;
  comparison.batch_size = 30;
  core::SprOptions spr_options;
  spr_options.comparison = comparison;

  util::TablePrinter table("Top-5 translations: three strategies");
  table.SetHeader({"Strategy", "Microtasks", "NDCG@5", "Precision@5"});

  // 1. Plain SPR.
  int64_t spr_cost = 0;
  {
    crowd::CrowdPlatform platform(&translations, 21);
    core::Spr spr(spr_options);
    const auto result = spr.Run(&platform, k);
    spr_cost = result.total_microtasks;
    table.AddRow({"SPR", std::to_string(result.total_microtasks),
                  util::FormatDouble(
                      metrics::Ndcg(translations, result.items, k), 3),
                  util::FormatDouble(
                      metrics::PrecisionAtK(translations, result.items, k),
                      3)});
  }
  // 2. HybridSPR: grade-everything filter, SPR on the shortlist.
  {
    crowd::CrowdPlatform platform(&translations, 22);
    baselines::HybridSpr::Options options;
    options.grades_per_item = 20;
    options.keep_factor = 4.0;
    options.spr = spr_options;
    baselines::HybridSpr hybrid_spr(options);
    const auto result = hybrid_spr.Run(&platform, k);
    table.AddRow({"HybridSPR", std::to_string(result.total_microtasks),
                  util::FormatDouble(
                      metrics::Ndcg(translations, result.items, k), 3),
                  util::FormatDouble(
                      metrics::PrecisionAtK(translations, result.items, k),
                      3)});
  }
  // 3. CrowdBT with SPR's budget.
  {
    crowd::CrowdPlatform platform(&translations, 23);
    baselines::CrowdBt::Options options;
    options.total_budget = spr_cost;
    baselines::CrowdBt crowd_bt(options);
    const auto result = crowd_bt.Run(&platform, k);
    table.AddRow({"CrowdBT", std::to_string(result.total_microtasks),
                  util::FormatDouble(
                      metrics::Ndcg(translations, result.items, k), 3),
                  util::FormatDouble(
                      metrics::PrecisionAtK(translations, result.items, k),
                      3)});
  }
  table.Print();
  std::printf(
      "\nthe two-cluster structure is what makes the graded filter shine:\n"
      "most of the 100 garbled candidates are eliminated for ~20 cheap\n"
      "grades each instead of a confidence-aware pairwise comparison.\n");
  return 0;
}
