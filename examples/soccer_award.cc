// Example: "the best 3 soccer players of the year" -- the paper's Figure 1
// scenario, demonstrating how to plug a *custom* judgment oracle into the
// library.
//
// A fan panel judges pairs of players; each fan's preference blends the
// players' form with personal bias and noise. Easy calls ("Messi vs a
// mid-table defender") resolve after one batch; close calls ("Messi vs
// Ronaldo") are automatically bought more judgments by the confidence-aware
// comparison process -- exactly the adaptive-workload behaviour the paper
// motivates with this example.
//
//   $ ./build/examples/soccer_award

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/spr.h"
#include "crowd/oracle.h"
#include "crowd/platform.h"
#include "judgment/cache.h"

namespace {

using namespace crowdtopk;

// A custom oracle only needs three methods: size, pairwise preference, and
// (optionally used) graded judgment.
class FanPanel : public crowd::JudgmentOracle {
 public:
  struct Player {
    std::string name;
    double form;  // hidden "true" strength this season
  };

  explicit FanPanel(std::vector<Player> players)
      : players_(std::move(players)) {}

  int64_t num_items() const override {
    return static_cast<int64_t>(players_.size());
  }

  const Player& player(crowd::ItemId id) const { return players_[id]; }

  double PreferenceJudgment(crowd::ItemId i, crowd::ItemId j,
                            util::Rng* rng) const override {
    // A fan watches both players through the fog of loyalty and luck.
    const double seen_i = players_[i].form + rng->Gaussian(0.0, 1.2);
    const double seen_j = players_[j].form + rng->Gaussian(0.0, 1.2);
    return std::clamp((seen_i - seen_j) / 10.0, -1.0, 1.0);
  }

  double GradedJudgment(crowd::ItemId i, util::Rng* rng) const override {
    return std::clamp(
        (players_[i].form + rng->Gaussian(0.0, 1.2)) / 10.0, 0.0, 1.0);
  }

 private:
  std::vector<Player> players_;
};

}  // namespace

int main() {
  FanPanel panel({
      {"Messi", 9.6},     {"Ronaldo", 9.5},   {"Neymar", 8.9},
      {"Suarez", 8.8},    {"Lewandowski", 8.6}, {"Iniesta", 8.3},
      {"Bale", 8.1},      {"Aguero", 8.0},    {"Hazard", 7.8},
      {"Griezmann", 7.7}, {"Pogba", 7.4},     {"Martial", 7.0},
      {"Vardy", 6.8},     {"Mahrez", 6.7},    {"Kane", 6.6},
      {"Ozil", 6.4},
  });

  crowd::CrowdPlatform platform(&panel, /*seed=*/90);

  crowdtopk::core::SprOptions options;
  options.comparison.alpha = 0.05;   // 95% confidence per verdict
  options.comparison.budget = 2000;  // hard calls may take many fans
  options.comparison.batch_size = 30;

  crowdtopk::core::Spr spr(options);
  const auto result = spr.Run(&platform, /*k=*/3);

  std::printf("Ballon d'Or podium by %lld fan microtasks (%lld rounds):\n",
              static_cast<long long>(result.total_microtasks),
              static_cast<long long>(result.rounds));
  const char* medals[] = {"gold  ", "silver", "bronze"};
  for (size_t p = 0; p < result.items.size(); ++p) {
    std::printf("  %s  %s\n", medals[p],
                panel.player(result.items[p]).name.c_str());
  }

  // Show the adaptive workload: how many judgments the close call at the
  // top consumed versus an easy one.
  crowdtopk::judgment::ComparisonCache cache(options.comparison);
  crowd::CrowdPlatform probe(&panel, /*seed=*/91);
  cache.Compare(0, 1, &probe);    // Messi vs Ronaldo (form gap 0.1)
  const int64_t hard = cache.Workload(0, 1);
  cache.Compare(0, 15, &probe);   // Messi vs Ozil (form gap 3.2)
  const int64_t easy = cache.Workload(0, 15);
  std::printf(
      "\nadaptive workloads: Messi-vs-Ronaldo took %lld judgments, "
      "Messi-vs-Ozil took %lld\n",
      static_cast<long long>(hard), static_cast<long long>(easy));
  return 0;
}
