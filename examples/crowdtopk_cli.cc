// crowdtopk_cli: run any top-k method on any dataset from the command line.
//
// Usage:
//   crowdtopk_cli [--dataset=imdb|book|jester|photo|peopleage]
//                 [--histogram_csv=PATH]      (load your own rating data)
//                 [--pairwise_csv=PATH --scores_csv=PATH]
//                 [--method=spr|tourtree|heapsort|quickselect|pbr|
//                           crowdbt|hybrid|hybridspr|all]
//                 [--k=10] [--confidence=0.98] [--budget=1000]
//                 [--batch=30] [--runs=1] [--seed=1] [--n=0 (subset size)]
//                 [--one_sided] [--estimator=student|stein|hoeffding]
//
// Examples:
//   crowdtopk_cli --dataset=jester --method=all --k=5 --runs=3
//   crowdtopk_cli --histogram_csv=books.csv --method=spr --k=10

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/crowd_bt.h"
#include "baselines/heap_sort.h"
#include "baselines/hybrid.h"
#include "baselines/pbr.h"
#include "baselines/quick_select.h"
#include "baselines/tournament_tree.h"
#include "core/infimum.h"
#include "core/spr.h"
#include "crowd/platform.h"
#include "data/generators.h"
#include "data/io.h"
#include "data/subset_dataset.h"
#include "metrics/ranking_metrics.h"
#include "util/random.h"
#include "util/table.h"

namespace {

using namespace crowdtopk;

// ---------------------------------------------------------- flag parsing

struct Flags {
  std::map<std::string, std::string> values;

  std::string Get(const std::string& name, const std::string& fallback) const {
    const auto it = values.find(name);
    return it == values.end() ? fallback : it->second;
  }
  int64_t GetInt(const std::string& name, int64_t fallback) const {
    const auto it = values.find(name);
    return it == values.end() ? fallback : std::atoll(it->second.c_str());
  }
  double GetDouble(const std::string& name, double fallback) const {
    const auto it = values.find(name);
    return it == values.end() ? fallback : std::atof(it->second.c_str());
  }
  bool Has(const std::string& name) const { return values.count(name) > 0; }
};

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int a = 1; a < argc; ++a) {
    const char* arg = argv[a];
    if (std::strncmp(arg, "--", 2) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", arg);
      return false;
    }
    const char* body = arg + 2;
    const char* equals = std::strchr(body, '=');
    if (equals == nullptr) {
      flags->values[body] = "true";  // boolean flag
    } else {
      flags->values[std::string(body, equals - body)] = equals + 1;
    }
  }
  return true;
}

// ------------------------------------------------------- method registry

std::unique_ptr<core::TopKAlgorithm> MakeMethod(
    const std::string& name, const judgment::ComparisonOptions& comparison,
    int64_t reference_budget) {
  if (name == "spr") {
    core::SprOptions options;
    options.comparison = comparison;
    return std::make_unique<core::Spr>(options);
  }
  if (name == "tourtree") {
    return std::make_unique<baselines::TournamentTree>(comparison);
  }
  if (name == "heapsort") {
    return std::make_unique<baselines::HeapSortTopK>(comparison);
  }
  if (name == "quickselect") {
    return std::make_unique<baselines::QuickSelectTopK>(comparison);
  }
  if (name == "pbr") {
    return std::make_unique<baselines::PbrTopK>(comparison);
  }
  if (name == "crowdbt") {
    baselines::CrowdBt::Options options;
    options.total_budget = reference_budget;
    return std::make_unique<baselines::CrowdBt>(options);
  }
  if (name == "hybrid") {
    baselines::Hybrid::Options options;
    options.total_budget = reference_budget;
    return std::make_unique<baselines::Hybrid>(options);
  }
  if (name == "hybridspr") {
    baselines::HybridSpr::Options options;
    options.spr.comparison = comparison;
    return std::make_unique<baselines::HybridSpr>(options);
  }
  return nullptr;
}

int Fail(const char* message) {
  std::fprintf(stderr, "error: %s\n", message);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 1;
  if (flags.Has("help")) {
    std::printf(
        "see the header comment of examples/crowdtopk_cli.cc for usage\n");
    return 0;
  }

  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const int64_t k = flags.GetInt("k", 10);
  const int64_t runs = flags.GetInt("runs", 1);

  // ------------------------------------------------------------- dataset
  std::unique_ptr<data::Dataset> dataset;
  if (flags.Has("histogram_csv")) {
    data::HistogramDataset::Options options;
    for (int b = 1; b <= 10; ++b) options.bin_values.push_back(b);
    auto loaded = data::LoadHistogramCsv(flags.Get("histogram_csv", ""),
                                         "custom", options);
    if (!loaded.ok()) return Fail(loaded.status().ToString().c_str());
    dataset = std::move(*loaded);
  } else if (flags.Has("pairwise_csv")) {
    if (!flags.Has("scores_csv")) {
      return Fail("--pairwise_csv needs --scores_csv for the ground truth");
    }
    auto scores = data::LoadScoresCsv(flags.Get("scores_csv", ""));
    if (!scores.ok()) return Fail(scores.status().ToString().c_str());
    auto loaded = data::LoadPairwiseCsv(flags.Get("pairwise_csv", ""),
                                        "custom", std::move(*scores));
    if (!loaded.ok()) return Fail(loaded.status().ToString().c_str());
    dataset = std::move(*loaded);
  } else {
    const std::string name = flags.Get("dataset", "imdb");
    if (name != "imdb" && name != "book" && name != "jester" &&
        name != "photo" && name != "peopleage") {
      return Fail("unknown --dataset");
    }
    dataset = data::MakeByName(name, seed);
  }

  // Optional random subset.
  std::unique_ptr<data::Dataset> subset_holder;
  const int64_t subset_n = flags.GetInt("n", 0);
  if (subset_n > 0 && subset_n < dataset->num_items()) {
    util::Rng rng(seed ^ 0xc11);
    subset_holder = std::move(dataset);
    dataset = data::RandomSubset(
        static_cast<data::Dataset*>(subset_holder.get()), subset_n, &rng);
  }
  if (k < 1 || k > dataset->num_items()) return Fail("bad --k");

  // ------------------------------------------------------------ options
  judgment::ComparisonOptions comparison;
  comparison.alpha = 1.0 - flags.GetDouble("confidence", 0.98);
  comparison.budget = flags.GetInt("budget", 1000);
  comparison.batch_size = flags.GetInt("batch", 30);
  comparison.min_workload = flags.GetInt("initial", 30);
  comparison.one_sided = flags.Has("one_sided");
  const std::string estimator = flags.Get("estimator", "student");
  if (estimator == "stein") {
    comparison.estimator = judgment::Estimator::kStein;
  } else if (estimator == "hoeffding") {
    comparison.estimator = judgment::Estimator::kHoeffding;
  } else if (estimator != "student") {
    return Fail("unknown --estimator");
  }
  if (comparison.alpha <= 0.0 || comparison.alpha >= 1.0) {
    return Fail("--confidence must be in (0, 1)");
  }

  // Fixed-budget heuristics get ~ an SPR-like budget unless overridden.
  const int64_t heuristic_budget = flags.GetInt(
      "heuristic_budget", dataset->num_items() * 2 * comparison.min_workload);

  std::vector<std::string> methods;
  const std::string method_flag = flags.Get("method", "spr");
  if (method_flag == "all") {
    methods = {"spr",     "tourtree", "heapsort", "quickselect",
               "pbr",     "crowdbt",  "hybrid",   "hybridspr"};
  } else {
    methods.push_back(method_flag);
  }

  // ---------------------------------------------------------------- run
  util::TablePrinter table("crowdtopk: " + dataset->name() + ", N=" +
                           std::to_string(dataset->num_items()) + ", k=" +
                           std::to_string(k));
  table.SetHeader({"Method", "TMC", "Rounds", "NDCG", "Precision"});
  std::vector<crowd::ItemId> last_answer;
  for (const std::string& name : methods) {
    auto method = MakeMethod(name, comparison, heuristic_budget);
    if (method == nullptr) return Fail("unknown --method");
    double tmc = 0.0, rounds = 0.0, ndcg = 0.0, precision = 0.0;
    util::Rng seeder(seed);
    for (int64_t r = 0; r < runs; ++r) {
      crowd::CrowdPlatform platform(dataset.get(), seeder.NextUint64());
      const core::TopKResult result = method->Run(&platform, k);
      tmc += static_cast<double>(result.total_microtasks);
      rounds += static_cast<double>(result.rounds);
      ndcg += metrics::Ndcg(*dataset, result.items, k);
      precision += metrics::PrecisionAtK(*dataset, result.items, k);
      last_answer = result.items;
    }
    const double d = static_cast<double>(runs);
    table.AddRow({method->name(), util::FormatDouble(tmc / d, 0),
                  util::FormatDouble(rounds / d, 0),
                  util::FormatDouble(ndcg / d, 3),
                  util::FormatDouble(precision / d, 3)});
  }
  table.Print();
  if (flags.Has("csv")) {
    if (!table.WriteCsv(flags.Get("csv", ""))) return Fail("cannot write csv");
  }

  std::printf("\nlast answer (best first):");
  for (crowd::ItemId item : last_answer) std::printf(" %d", item);
  std::printf("\ntrue top-%lld           :", static_cast<long long>(k));
  for (crowd::ItemId item : dataset->TrueTopK(k)) std::printf(" %d", item);
  std::printf("\n");
  return 0;
}
