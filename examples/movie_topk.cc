// Example: "the 10 best movies" -- the paper's IMDb scenario end to end.
//
// Builds the IMDb-like dataset (1225 movies with vote histograms and
// weighted-rank ground truth), answers a top-10 query with SPR and the three
// traditional baselines, and prints the cost/latency/quality trade-off
// table that motivates the paper.
//
//   $ ./build/examples/movie_topk

#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/heap_sort.h"
#include "baselines/quick_select.h"
#include "baselines/tournament_tree.h"
#include "core/infimum.h"
#include "core/spr.h"
#include "crowd/platform.h"
#include "data/generators.h"
#include "metrics/ranking_metrics.h"
#include "util/table.h"

int main() {
  using namespace crowdtopk;

  const uint64_t seed = 2017;
  auto imdb = data::MakeImdbLike(seed);
  const int64_t k = 10;

  // Paper defaults: 98% confidence per comparison, per-pair budget 1000,
  // batches of 30 microtasks.
  judgment::ComparisonOptions comparison;
  comparison.alpha = 0.02;
  comparison.budget = 1000;
  comparison.batch_size = 30;

  core::SprOptions spr_options;
  spr_options.comparison = comparison;

  std::vector<std::unique_ptr<core::TopKAlgorithm>> methods;
  methods.push_back(std::make_unique<core::Spr>(spr_options));
  methods.push_back(std::make_unique<baselines::TournamentTree>(comparison));
  methods.push_back(std::make_unique<baselines::HeapSortTopK>(comparison));
  methods.push_back(std::make_unique<baselines::QuickSelectTopK>(comparison));

  util::TablePrinter table("Top-10 movies, 1225 candidates, one query each");
  table.SetHeader({"Method", "Microtasks", "USD @0.1c", "Rounds", "NDCG@10"});
  std::vector<crowd::ItemId> spr_answer;
  for (auto& method : methods) {
    crowd::CrowdPlatform platform(imdb.get(), seed + 7);
    const core::TopKResult result = method->Run(&platform, k);
    if (method->name() == "SPR") spr_answer = result.items;
    table.AddRow({method->name(),
                  std::to_string(result.total_microtasks),
                  util::FormatDouble(result.total_microtasks * 0.001, 2),
                  std::to_string(result.rounds),
                  util::FormatDouble(metrics::Ndcg(*imdb, result.items, k),
                                     3)});
  }
  const core::InfimumEstimate inf =
      core::EstimateInfimum(*imdb, k, comparison, seed + 8, 3);
  table.AddRow({"(Infimum)", util::FormatDouble(inf.tmc, 0),
                util::FormatDouble(inf.tmc * 0.001, 2),
                util::FormatDouble(inf.rounds, 0), "-"});
  table.Print();

  std::printf("\nSPR's top-10 (movie id : true rank):\n");
  for (size_t p = 0; p < spr_answer.size(); ++p) {
    std::printf("  %2zu. movie %-5d (true rank %lld)\n", p + 1,
                spr_answer[p],
                static_cast<long long>(imdb->TrueRank(spr_answer[p])));
  }
  return 0;
}
