// Quickstart: answer a crowdsourced top-k query with SPR.
//
// Builds a small synthetic dataset (as a stand-in for a real crowd), runs
// the SPR framework at 95% comparison confidence, and prints the top-5 with
// cost/latency/quality numbers.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "core/spr.h"
#include "crowd/platform.h"
#include "data/generators.h"
#include "metrics/ranking_metrics.h"

int main() {
  using namespace crowdtopk;

  // 1. A data source. Any crowd::JudgmentOracle works; here we simulate 200
  //    items whose pairwise preferences are noisy observations of a hidden
  //    score ladder.
  auto dataset = data::MakeUniformLadder(/*n=*/200, /*gap=*/1.0,
                                         /*noise_stddev=*/10.0);

  // 2. A platform: meters every purchased microtask (cost) and batch round
  //    (latency). Judgments are sampled deterministically from the seed.
  crowd::CrowdPlatform platform(dataset.get(), /*seed=*/1);

  // 3. Configure SPR: 95% confidence per comparison, at most 1000 microtasks
  //    per pair, batches of 30.
  core::SprOptions options;
  options.comparison.alpha = 0.05;
  options.comparison.budget = 1000;
  options.comparison.batch_size = 30;

  core::Spr spr(options);
  const core::TopKResult result = spr.Run(&platform, /*k=*/5);

  std::printf("Top-5 items (best first):\n");
  for (size_t position = 0; position < result.items.size(); ++position) {
    const crowd::ItemId item = result.items[position];
    std::printf("  %zu. item %d  (true rank %lld)\n", position + 1, item,
                static_cast<long long>(dataset->TrueRank(item)));
  }
  std::printf("total monetary cost : %lld microtasks\n",
              static_cast<long long>(result.total_microtasks));
  std::printf("query latency       : %lld batch rounds\n",
              static_cast<long long>(result.rounds));
  std::printf("NDCG@5              : %.3f\n",
              metrics::Ndcg(*dataset, result.items, 5));
  return 0;
}
