// Table 7: total monetary cost of the confidence-aware methods on the four
// datasets at default settings.
//
// Paper (IMDb row): SPR 88,233 < HeapSort 114,190 < TourTree 177,231 <
// QuickSelect 334,938 << PBR 1.6M. The expected *shape* is that SPR wins on
// every dataset and PBR is the most expensive by a wide margin.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/harness.h"

int main() {
  using namespace crowdtopk;
  const int64_t runs = util::BenchRuns(5);
  const uint64_t seed = util::BenchSeed();
  bench::PrintPreamble(
      "Table 7: TMC of confidence-aware methods (defaults: k=10, "
      "1-alpha=0.98, B=1000)",
      runs, seed);

  const judgment::ComparisonOptions options =
      bench::DefaultComparisonOptions();

  util::TablePrinter table("TMC");
  table.SetHeader(
      {"TMC", "SPR", "TourTree", "HeapSort", "QuickSelect", "PBR"});
  for (const char* name : {"imdb", "book", "jester", "photo"}) {
    auto dataset = data::MakeByName(name, seed);
    std::vector<std::string> row = {dataset->name()};
    auto methods = bench::ConfidenceAwareMethods(options);
    methods.push_back(std::make_unique<baselines::PbrTopK>(options));
    // PBR is far slower to simulate; cap its repetitions.
    for (auto& method : methods) {
      const int64_t method_runs =
          method->name() == "PBR" ? std::min<int64_t>(runs, 3) : runs;
      const bench::Averages averages = bench::AverageRuns(
          *dataset, method.get(), bench::DefaultK(), method_runs, seed + 1);
      row.push_back(util::FormatDouble(averages.tmc, 0));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\npaper IMDb row: SPR 88233 | TourTree 177231 | HeapSort 114190 | "
      "QuickSelect 334938 | PBR 1.6M\n");
  return 0;
}
