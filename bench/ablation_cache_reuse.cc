// Ablation (cross-query judgment cache): TMC and latency saved by reusing
// completed COMP verdicts across the queries of one serving replay
// (src/cache), as a function of the query-overlap rate.
//
// Workload: Q top-k queries, each over an n-item subset of one shared
// 120-item universe, served FIFO (max_inflight = 1) so later queries can
// reuse everything earlier ones published. Overlap rho picks how many
// distinct subsets the trace cycles through: D = Q - round(rho * (Q - 1)),
// so rho = 0 gives Q all-distinct subsets (reuse only from incidental
// pair overlap) and rho = 1 repeats one subset Q times (maximal reuse).
// Every rho row replays the identical trace twice — cache off, cache on —
// and reports total microtasks, makespan rounds, and the saving.
//
// Expected: savings grow monotonically with rho; at rho = 0.5 the repeated
// subsets make the cached replay at least ~20% cheaper, and at rho = 1 all
// queries after the first cost almost nothing.
//
// Knobs (bench/harness.h has the shared ones):
//   CROWDTOPK_CACHE_QUERIES   queries per replay            (default 12)
//   CROWDTOPK_CACHE_SUBSET    items per query subset        (default 40)
//   CROWDTOPK_CACHE_UNIVERSE  items in the shared universe  (default 80)
//   CROWDTOPK_CACHE_K         top-k per query               (default 10)
//   CROWDTOPK_CACHE_TRANSITIVITY =1 also serves composed verdicts
//   CROWDTOPK_RUNS, CROWDTOPK_SEED, CROWDTOPK_JOBS as everywhere else.

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/harness.h"
#include "data/subset_dataset.h"
#include "serve/query_service.h"

int main() {
  using namespace crowdtopk;
  const int64_t runs = util::BenchRuns(3);
  const uint64_t seed = util::BenchSeed();
  const int64_t queries = util::GetEnvInt64("CROWDTOPK_CACHE_QUERIES", 12);
  const int64_t subset_n = util::GetEnvInt64("CROWDTOPK_CACHE_SUBSET", 40);
  const int64_t universe_n = util::GetEnvInt64("CROWDTOPK_CACHE_UNIVERSE", 80);
  const int64_t k = util::GetEnvInt64("CROWDTOPK_CACHE_K", 10);
  const bool transitivity = util::CacheTransitivity();
  bench::PrintPreamble("Ablation: cross-query judgment-cache reuse", runs,
                       seed);
  std::printf(
      "%lld queries/replay over %lld-item subsets of a %lld-item universe, "
      "k=%lld, FIFO serving, the four confidence-aware methods "
      "round-robin%s\n\n",
      static_cast<long long>(queries), static_cast<long long>(subset_n),
      static_cast<long long>(universe_n), static_cast<long long>(k),
      transitivity ? ", transitivity on" : "");

  const judgment::ComparisonOptions comparison =
      bench::DefaultComparisonOptions();
  const auto methods = bench::ConfidenceAwareMethods(comparison);

  util::TablePrinter table("TMC and rounds: cache off vs on, by overlap rho");
  table.SetHeader({"rho", "subsets", "TMC off", "TMC on", "saved %",
                   "rounds off", "rounds on", "hits", "topups"});

  for (const double rho : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const int64_t distinct =
        queries - static_cast<int64_t>(
                      std::llround(rho * static_cast<double>(queries - 1)));
    // Record: {tmc_off, tmc_on, rounds_off, rounds_on, hits, topups}.
    const std::vector<double> mean = bench::AverageOver(
        runs, seed, [&](int64_t, uint64_t run_seed) -> std::vector<double> {
          util::Rng rng(run_seed);
          const auto universe = data::MakeUniformLadder(universe_n, 10.0, 2.0);
          std::vector<std::unique_ptr<data::SubsetDataset>> subsets;
          for (int64_t d = 0; d < distinct; ++d) {
            subsets.push_back(data::RandomSubset(universe.get(), subset_n,
                                                 &rng));
          }
          std::vector<serve::QueryRequest> requests(queries);
          for (int64_t q = 0; q < queries; ++q) {
            const data::SubsetDataset* subset =
                subsets[q % distinct].get();
            requests[q].algorithm =
                methods[q % methods.size()].get();
            requests[q].dataset = subset;
            requests[q].k = k;
            // All subsets view the same universe: share one namespace and
            // translate local ids to parent ids.
            requests[q].cache_universe = 0;
            requests[q].cache_item_ids = subset->parent_ids();
          }
          const std::vector<double> arrivals(queries, 0.0);

          std::vector<double> record;
          for (const bool cached : {false, true}) {
            serve::ServeOptions options;
            options.max_inflight = 1;  // FIFO: maximal reuse window
            options.jobs = 1;
            options.seed = run_seed;
            options.cache.enabled = cached;
            options.cache.transitivity = transitivity;
            serve::QueryService service(options);
            const std::vector<serve::QueryOutcome> outcomes =
                service.Replay(requests, arrivals);
            double tmc = 0.0, hits = 0.0, topups = 0.0;
            for (const serve::QueryOutcome& o : outcomes) {
              tmc += static_cast<double>(o.total_microtasks);
              hits += static_cast<double>(o.cache_hits + o.cache_inferred);
              topups += static_cast<double>(o.cache_topups);
            }
            record.push_back(tmc);
            record.push_back(static_cast<double>(service.total_rounds()));
            if (cached) {
              record.push_back(hits);
              record.push_back(topups);
            }
          }
          // Reorder to {tmc_off, tmc_on, rounds_off, rounds_on, hits,
          // topups}.
          return {record[0], record[2], record[1], record[3], record[4],
                  record[5]};
        });
    const double saved =
        mean[0] > 0.0 ? 100.0 * (mean[0] - mean[1]) / mean[0] : 0.0;
    table.AddRow({util::FormatDouble(rho, 2),
                  std::to_string(static_cast<long long>(distinct)),
                  util::FormatDouble(mean[0], 0),
                  util::FormatDouble(mean[1], 0),
                  util::FormatDouble(saved, 1),
                  util::FormatDouble(mean[2], 0),
                  util::FormatDouble(mean[3], 0),
                  util::FormatDouble(mean[4], 0),
                  util::FormatDouble(mean[5], 0)});
  }
  table.Print();
  std::printf(
      "\nexpected: saved %% grows with rho; >= 20%% at rho = 0.5 and the\n"
      "rho = 1 replay pays roughly one query's cost for all %lld queries\n",
      static_cast<long long>(queries));
  return 0;
}
