// Ablation (statistical validity under continuous monitoring): Algorithm 1
// peeks at a FIXED-SAMPLE-SIZE Student-t interval after every purchased
// judgment. For a truly tied pair (mu = 0), the chance that such an interval
// *ever* excludes 0 within a long horizon far exceeds the nominal alpha --
// the classical peeking problem. An anytime-valid confidence sequence
// (Estimator::kAnytime, LIL bound) keeps the trajectory-wide error below
// alpha, at the price of larger workloads on decidable pairs.
//
// This bench measures both sides of that trade:
//   (a) false-decision rate on an exactly tied pair within a horizon,
//   (b) mean workload on a clearly decidable pair.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "data/gaussian_dataset.h"
#include "stats/binomial.h"

namespace {

using namespace crowdtopk;

int64_t CountFalseDecisions(judgment::Estimator estimator, double alpha,
                            int64_t horizon, int64_t trials, uint64_t seed) {
  // Two items with identical scores: any decision is false.
  data::GaussianDataset tied("tied", {1.0, 1.0}, 2.0, 10.0);
  judgment::ComparisonOptions options;
  options.alpha = alpha;
  options.budget = horizon;
  options.min_workload = 2;  // peek from the very start (worst case)
  options.batch_size = 1;
  options.estimator = estimator;
  stats::TCriticalCache t_cache(alpha);
  crowd::CrowdPlatform platform(&tied, seed);
  int64_t false_decisions = 0;
  for (int64_t t = 0; t < trials; ++t) {
    judgment::ComparisonSession session(0, 1, &options, &t_cache);
    while (!session.Finished()) session.Step(&platform, 64);
    if (session.outcome() != crowd::ComparisonOutcome::kTie) {
      ++false_decisions;
    }
  }
  return false_decisions;
}

double MeanWorkload(judgment::Estimator estimator, double alpha,
                    uint64_t seed) {
  data::GaussianDataset pair("pair", {0.0, 1.0}, 2.0, 10.0);  // effect 0.5
  judgment::ComparisonOptions options;
  options.alpha = alpha;
  options.budget = int64_t{1} << 20;
  options.min_workload = 30;
  options.batch_size = 1;
  options.estimator = estimator;
  stats::TCriticalCache t_cache(alpha);
  crowd::CrowdPlatform platform(&pair, seed);
  double total = 0.0;
  const int64_t trials = 80;
  for (int64_t t = 0; t < trials; ++t) {
    judgment::ComparisonSession session(1, 0, &options, &t_cache);
    while (!session.Finished()) session.Step(&platform, 64);
    total += static_cast<double>(session.workload());
  }
  return total / static_cast<double>(trials);
}

}  // namespace

int main() {
  const int64_t runs = util::BenchRuns(400);  // trials for the error rate
  const uint64_t seed = util::BenchSeed();
  const double alpha = 0.05;
  const int64_t horizon = 2000;
  std::printf(
      "Ablation: anytime validity under continuous peeking (alpha = %.2f,\n"
      "horizon = %lld samples, tied pair -> every decision is an error)\n\n",
      alpha, static_cast<long long>(horizon));

  util::TablePrinter table("fixed-n t-interval vs confidence sequence");
  table.SetHeader({"Estimator", "false-decision rate (tied)",
                   "95% Wilson band", "mean workload (decidable)"});
  struct Row {
    const char* name;
    judgment::Estimator estimator;
  };
  for (const Row& row :
       {Row{"Student (Alg. 1)", judgment::Estimator::kStudent},
        Row{"Anytime (LIL)", judgment::Estimator::kAnytime}}) {
    const int64_t false_decisions =
        CountFalseDecisions(row.estimator, alpha, horizon, runs, seed + 1);
    const double error =
        static_cast<double>(false_decisions) / static_cast<double>(runs);
    // The shared interval helper (stats/binomial.h), not ad-hoc normal
    // approximation: the same band src/verify judges contracts with.
    const stats::ProportionInterval band =
        stats::WilsonScoreInterval(false_decisions, runs, 0.05);
    const double workload = MeanWorkload(row.estimator, alpha, seed + 2);
    std::string band_text = "[";
    band_text += util::FormatDouble(band.lo, 3);
    band_text += ", ";
    band_text += util::FormatDouble(band.hi, 3);
    band_text += "]";
    table.AddRow({row.name, util::FormatDouble(error, 3), band_text,
                  util::FormatDouble(workload, 1)});
  }
  table.Print();
  std::printf(
      "\nexpected: the peeked t-interval's trajectory-wide error greatly\n"
      "exceeds alpha = %.2f, the confidence sequence stays below it, and\n"
      "the safety costs roughly 2-4x workload on decidable pairs\n",
      alpha);
  return 0;
}
