// Figure 13: result accuracy (NDCG) on IMDb by varying k, item cardinality,
// pairwise budget B, and confidence level.
//
// Paper shape: all methods perform badly when B <= 100 and recover once B is
// sufficient (hence the B = 1000 default); at defaults the methods score
// similar NDCG with QuickSelect slightly ahead, while SPR achieves that
// accuracy at the lowest TMC.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "data/subset_dataset.h"

namespace {

using namespace crowdtopk;

using MethodList = std::vector<std::unique_ptr<core::TopKAlgorithm>>;

}  // namespace

int main() {
  const int64_t runs = util::BenchRuns(5);
  const uint64_t seed = util::BenchSeed();
  bench::PrintPreamble("Figure 13: accuracy (NDCG) on IMDb-like data", runs,
                       seed);

  auto imdb = data::MakeImdbLike(seed);

  // (a) vary k.
  {
    util::TablePrinter table("NDCG vs k");
    table.SetHeader({"Method", "k=1", "k=5", "k=10", "k=15", "k=20"});
    auto methods =
        bench::ConfidenceAwareMethods(bench::DefaultComparisonOptions());
    for (auto& method : methods) {
      std::vector<std::string> row = {method->name()};
      for (int64_t k : {1, 5, 10, 15, 20}) {
        const bench::Averages averages =
            bench::AverageRuns(*imdb, method.get(), k, runs, seed + k);
        row.push_back(util::FormatDouble(averages.ndcg, 3));
      }
      table.AddRow(row);
    }
    table.Print();
    std::printf("\n");
  }

  // (b) vary N.
  {
    util::TablePrinter table("NDCG vs N");
    table.SetHeader({"Method", "25", "50", "100", "200", "400", "800",
                     "All"});
    auto methods =
        bench::ConfidenceAwareMethods(bench::DefaultComparisonOptions());
    std::vector<std::vector<std::string>> rows(methods.size());
    for (size_t m = 0; m < methods.size(); ++m) {
      rows[m].push_back(methods[m]->name());
    }
    util::Rng subset_rng(seed ^ 0xacc);
    for (int64_t n : {int64_t{25}, int64_t{50}, int64_t{100}, int64_t{200},
                      int64_t{400}, int64_t{800}, imdb->num_items()}) {
      auto subset = data::RandomSubset(imdb.get(), n, &subset_rng);
      const int64_t k = std::min<int64_t>(bench::DefaultK(), n);
      for (size_t m = 0; m < methods.size(); ++m) {
        const bench::Averages averages = bench::AverageRuns(
            *subset, methods[m].get(), k, runs, seed + n);
        rows[m].push_back(util::FormatDouble(averages.ndcg, 3));
      }
    }
    for (auto& row : rows) table.AddRow(row);
    table.Print();
    std::printf("\n");
  }

  // (c) vary B.
  {
    util::TablePrinter table("NDCG vs B (accuracy needs a sufficient B)");
    table.SetHeader({"Method", "B=30", "B=100", "B=200", "B=500", "B=1000",
                     "B=2000", "B=4000"});
    std::vector<std::vector<std::string>> rows(4);
    bool names_set = false;
    for (int64_t budget : {30, 100, 200, 500, 1000, 2000, 4000}) {
      judgment::ComparisonOptions options =
          bench::DefaultComparisonOptions();
      options.budget = budget;
      auto methods = bench::ConfidenceAwareMethods(options);
      for (size_t m = 0; m < methods.size(); ++m) {
        if (!names_set) rows[m].push_back(methods[m]->name());
        const bench::Averages averages =
            bench::AverageRuns(*imdb, methods[m].get(), bench::DefaultK(),
                               runs, seed + budget);
        rows[m].push_back(util::FormatDouble(averages.ndcg, 3));
      }
      names_set = true;
    }
    for (auto& row : rows) table.AddRow(row);
    table.Print();
    std::printf("\n");
  }

  // (d) vary confidence level.
  {
    util::TablePrinter table("NDCG vs confidence level");
    table.SetHeader({"Method", "0.80", "0.85", "0.90", "0.95", "0.98"});
    std::vector<std::vector<std::string>> rows(4);
    bool names_set = false;
    for (double confidence : {0.80, 0.85, 0.90, 0.95, 0.98}) {
      judgment::ComparisonOptions options =
          bench::DefaultComparisonOptions();
      options.alpha = 1.0 - confidence;
      auto methods = bench::ConfidenceAwareMethods(options);
      for (size_t m = 0; m < methods.size(); ++m) {
        if (!names_set) rows[m].push_back(methods[m]->name());
        const bench::Averages averages = bench::AverageRuns(
            *imdb, methods[m].get(), bench::DefaultK(), runs,
            seed + static_cast<int>(confidence * 100));
        rows[m].push_back(util::FormatDouble(averages.ndcg, 3));
      }
      names_set = true;
    }
    for (auto& row : rows) table.AddRow(row);
    table.Print();
  }
  return 0;
}
