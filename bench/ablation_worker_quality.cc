// Ablation (beyond the paper, cf. Section 4's i.i.d.-worker assumption):
// robustness of the confidence-aware pipeline to worker heterogeneity.
// A WorkerPoolOracle distorts every judgment with per-worker scale/bias/
// noise and a configurable spammer fraction; SPR runs unchanged on top.
// A second block of scenarios swaps in the fault-injection layer
// (src/fault), whose models WorkerPoolOracle lacks: adversarial sign
// flips, lazy near-neutral answers, and frozen duplicate submissions.
//
// Expected: per-worker *scale* variation is nearly free (the sign of the
// preference is preserved, variance grows mildly); unbiased noise costs
// extra microtasks but not accuracy; spammers inflate both cost and, past a
// threshold, errors. Adversaries are the cheapest fault to buy and the most
// expensive to survive: a small flipped minority mostly costs microtasks, a
// large one corrupts the answer outright.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "crowd/workers.h"
#include "fault/injector.h"

int main() {
  using namespace crowdtopk;
  const int64_t runs = util::BenchRuns(8);
  const uint64_t seed = util::BenchSeed();
  bench::PrintPreamble("Ablation: worker quality (SPR on IMDb-like)", runs,
                       seed);

  auto imdb = data::MakeImdbLike(seed);

  struct Scenario {
    const char* name;
    crowd::WorkerPoolOptions pool;
  };
  std::vector<Scenario> scenarios;
  scenarios.push_back({"ideal (no pool)", {}});
  {
    Scenario s{"scale spread 2x", {}};
    s.pool.scale_spread = 2.0;
    scenarios.push_back(s);
  }
  {
    Scenario s{"extra noise 0.1", {}};
    s.pool.max_noise = 0.2;  // uniform in [0, 0.2], mean 0.1
    scenarios.push_back(s);
  }
  {
    Scenario s{"5% spammers", {}};
    s.pool.spammer_fraction = 0.05;
    scenarios.push_back(s);
  }
  {
    Scenario s{"20% spammers", {}};
    s.pool.spammer_fraction = 0.20;
    scenarios.push_back(s);
  }
  {
    Scenario s{"the works", {}};
    s.pool.scale_spread = 2.0;
    s.pool.max_noise = 0.2;
    s.pool.spammer_fraction = 0.10;
    scenarios.push_back(s);
  }

  util::TablePrinter table("SPR under worker distortion");
  table.SetHeader({"Workers", "TMC", "NDCG", "Precision"});
  for (size_t index = 0; index < scenarios.size(); ++index) {
    const Scenario& scenario = scenarios[index];
    core::SprOptions spr_options;
    spr_options.comparison = bench::DefaultComparisonOptions();
    core::Spr spr(spr_options);
    bench::Averages averages;
    if (index == 0) {
      averages =
          bench::AverageRuns(*imdb, &spr, bench::DefaultK(), runs, seed + 1);
    } else {
      // The pool wraps the dataset but quality is still scored against the
      // dataset's ground truth. (AverageRuns needs a Dataset; wrap
      // manually.) The pool is immutable after construction, so parallel
      // runs share it safely.
      crowd::WorkerPoolOracle pool(imdb.get(), scenario.pool, seed + index);
      const std::vector<double> mean = bench::AverageOver(
          runs, seed + 1,
          [&](int64_t, uint64_t run_seed) -> std::vector<double> {
            crowd::CrowdPlatform platform(&pool, run_seed);
            const core::TopKResult result =
                spr.Run(&platform, bench::DefaultK());
            return {static_cast<double>(result.total_microtasks),
                    metrics::Ndcg(*imdb, result.items, bench::DefaultK()),
                    metrics::PrecisionAtK(*imdb, result.items,
                                          bench::DefaultK())};
          });
      averages.tmc = mean[0];
      averages.ndcg = mean[1];
      averages.precision = mean[2];
    }
    table.AddRow({scenario.name, util::FormatDouble(averages.tmc, 0),
                  util::FormatDouble(averages.ndcg, 3),
                  util::FormatDouble(averages.precision, 3)});
  }
  table.Print();

  // Fault-model scenarios (src/fault): same SPR, same scoring, degraded
  // crowds the WorkerPoolOracle cannot express.
  struct FaultScenario {
    const char* name;
    fault::FaultPlan plan;
  };
  std::vector<FaultScenario> fault_scenarios;
  {
    FaultScenario s{"10% adversaries", {}};
    s.plan.adversary_fraction = 0.10;
    fault_scenarios.push_back(s);
  }
  {
    FaultScenario s{"25% lazy", {}};
    s.plan.lazy_fraction = 0.25;
    fault_scenarios.push_back(s);
  }
  {
    FaultScenario s{"25% duplicates", {}};
    s.plan.duplicate_fraction = 0.25;
    fault_scenarios.push_back(s);
  }
  {
    FaultScenario s{"mixed faults", {}};
    s.plan.spammer_fraction = 0.10;
    s.plan.adversary_fraction = 0.05;
    s.plan.lazy_fraction = 0.10;
    s.plan.duplicate_fraction = 0.10;
    fault_scenarios.push_back(s);
  }

  util::TablePrinter fault_table("SPR under injected faults (src/fault)");
  fault_table.SetHeader({"Faults", "TMC", "NDCG", "Precision"});
  for (size_t index = 0; index < fault_scenarios.size(); ++index) {
    const FaultScenario& scenario = fault_scenarios[index];
    core::SprOptions spr_options;
    spr_options.comparison = bench::DefaultComparisonOptions();
    core::Spr spr(spr_options);
    // Immutable after construction, so parallel runs share the injector.
    const fault::FaultInjectionOracle faulty(imdb.get(), scenario.plan,
                                             seed + 100 + index);
    const std::vector<double> mean = bench::AverageOver(
        runs, seed + 1,
        [&](int64_t, uint64_t run_seed) -> std::vector<double> {
          crowd::CrowdPlatform platform(&faulty, run_seed);
          const core::TopKResult result = spr.Run(&platform, bench::DefaultK());
          return {static_cast<double>(result.total_microtasks),
                  metrics::Ndcg(*imdb, result.items, bench::DefaultK()),
                  metrics::PrecisionAtK(*imdb, result.items,
                                        bench::DefaultK())};
        });
    fault_table.AddRow({scenario.name, util::FormatDouble(mean[0], 0),
                        util::FormatDouble(mean[1], 3),
                        util::FormatDouble(mean[2], 3)});
  }
  fault_table.Print();
  return 0;
}
