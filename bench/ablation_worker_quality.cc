// Ablation (beyond the paper, cf. Section 4's i.i.d.-worker assumption):
// robustness of the confidence-aware pipeline to worker heterogeneity.
// A WorkerPoolOracle distorts every judgment with per-worker scale/bias/
// noise and a configurable spammer fraction; SPR runs unchanged on top.
//
// Expected: per-worker *scale* variation is nearly free (the sign of the
// preference is preserved, variance grows mildly); unbiased noise costs
// extra microtasks but not accuracy; spammers inflate both cost and, past a
// threshold, errors.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "crowd/workers.h"

int main() {
  using namespace crowdtopk;
  const int64_t runs = util::BenchRuns(8);
  const uint64_t seed = util::BenchSeed();
  bench::PrintPreamble("Ablation: worker quality (SPR on IMDb-like)", runs,
                       seed);

  auto imdb = data::MakeImdbLike(seed);

  struct Scenario {
    const char* name;
    crowd::WorkerPoolOptions pool;
  };
  std::vector<Scenario> scenarios;
  scenarios.push_back({"ideal (no pool)", {}});
  {
    Scenario s{"scale spread 2x", {}};
    s.pool.scale_spread = 2.0;
    scenarios.push_back(s);
  }
  {
    Scenario s{"extra noise 0.1", {}};
    s.pool.max_noise = 0.2;  // uniform in [0, 0.2], mean 0.1
    scenarios.push_back(s);
  }
  {
    Scenario s{"5% spammers", {}};
    s.pool.spammer_fraction = 0.05;
    scenarios.push_back(s);
  }
  {
    Scenario s{"20% spammers", {}};
    s.pool.spammer_fraction = 0.20;
    scenarios.push_back(s);
  }
  {
    Scenario s{"the works", {}};
    s.pool.scale_spread = 2.0;
    s.pool.max_noise = 0.2;
    s.pool.spammer_fraction = 0.10;
    scenarios.push_back(s);
  }

  util::TablePrinter table("SPR under worker distortion");
  table.SetHeader({"Workers", "TMC", "NDCG", "Precision"});
  for (size_t index = 0; index < scenarios.size(); ++index) {
    const Scenario& scenario = scenarios[index];
    core::SprOptions spr_options;
    spr_options.comparison = bench::DefaultComparisonOptions();
    core::Spr spr(spr_options);
    bench::Averages averages;
    if (index == 0) {
      averages =
          bench::AverageRuns(*imdb, &spr, bench::DefaultK(), runs, seed + 1);
    } else {
      // The pool wraps the dataset but quality is still scored against the
      // dataset's ground truth. (AverageRuns needs a Dataset; wrap
      // manually.) The pool is immutable after construction, so parallel
      // runs share it safely.
      crowd::WorkerPoolOracle pool(imdb.get(), scenario.pool, seed + index);
      const std::vector<double> mean = bench::AverageOver(
          runs, seed + 1,
          [&](int64_t, uint64_t run_seed) -> std::vector<double> {
            crowd::CrowdPlatform platform(&pool, run_seed);
            const core::TopKResult result =
                spr.Run(&platform, bench::DefaultK());
            return {static_cast<double>(result.total_microtasks),
                    metrics::Ndcg(*imdb, result.items, bench::DefaultK()),
                    metrics::PrecisionAtK(*imdb, result.items,
                                          bench::DefaultK())};
          });
      averages.tmc = mean[0];
      averages.ndcg = mean[1];
      averages.precision = mean[2];
    }
    table.AddRow({scenario.name, util::FormatDouble(averages.tmc, 0),
                  util::FormatDouble(averages.ndcg, 3),
                  util::FormatDouble(averages.precision, 3)});
  }
  table.Print();
  return 0;
}
