// Figure 15 (Appendix D): analytic comparison of the sample sizes needed by
// the pairwise binary judgment (n_b, Hoeffding, Equation (3)) and the
// pairwise preference judgment (n, Student's t) over a (mu, sigma) grid.
//
// n solves n = (t_{alpha/2, n-1} * sigma / mu)^2 (fixed point); n_b =
// (2 / mu~^2) log(2 / alpha) with mu~ = 2 Phi(mu / sigma) - 1. The paper's
// Mathematica surface shows n_b - n > 0 everywhere; this harness prints the
// same difference on a grid.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "stats/normal.h"
#include "stats/student_t.h"

namespace {

using namespace crowdtopk;

// Fixed point of n = (t_{alpha/2, n-1} sigma / mu)^2, floored at 2.
double StudentSampleSize(double mu, double sigma, double alpha) {
  double n = 64.0;
  for (int iteration = 0; iteration < 200; ++iteration) {
    const double df = std::max(n - 1.0, 1.0);
    const double t = stats::StudentTCritical(alpha, df);
    const double next = std::max(2.0, std::pow(t * sigma / mu, 2.0));
    if (std::fabs(next - n) < 1e-9) return next;
    n = 0.5 * (n + next);  // damped iteration for stability
  }
  return n;
}

double BinarySampleSize(double mu, double sigma, double alpha) {
  const double mu_tilde = 2.0 * stats::NormalCdf(mu / sigma) - 1.0;
  return 2.0 / (mu_tilde * mu_tilde) * std::log(2.0 / alpha);
}

}  // namespace

int main() {
  const double alpha = 0.05;
  std::printf(
      "Figure 15: n_b - n over the (mu, sigma) grid (alpha = %.2f)\n"
      "(paper: positive everywhere, i.e. binary judgments always need more "
      "samples)\n\n",
      alpha);

  const std::vector<double> mus = {0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0};
  const std::vector<double> sigmas = {0.1, 0.2, 0.4, 0.6, 0.8, 1.0};

  util::TablePrinter table("n_b - n (rows: sigma, cols: mu)");
  std::vector<std::string> header = {"sigma\\mu"};
  for (double mu : mus) header.push_back(util::FormatDouble(mu, 2));
  table.SetHeader(header);
  int64_t negatives = 0;
  for (double sigma : sigmas) {
    std::vector<std::string> row = {util::FormatDouble(sigma, 2)};
    for (double mu : mus) {
      const double n = StudentSampleSize(mu, sigma, alpha);
      const double nb = BinarySampleSize(mu, sigma, alpha);
      const double diff = nb - n;
      if (diff <= 0.0) ++negatives;
      row.push_back(util::FormatDouble(diff, 1));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("\ncells with n_b - n <= 0: %lld (paper predicts 0)\n",
              static_cast<long long>(negatives));

  // Also report the asymptotic workload ratio as mu/sigma -> 0:
  // n_b/n -> 2 ln(2/alpha) / (z_{alpha/2}^2 * (2 phi(0))^2).
  const double z = stats::NormalQuantile(1.0 - alpha / 2.0);
  const double phi0 = stats::NormalPdf(0.0);
  std::printf("asymptotic n_b/n ratio for hard comparisons: %.2f\n",
              2.0 * std::log(2.0 / alpha) / (z * z * 4.0 * phi0 * phi0));
  return 0;
}
