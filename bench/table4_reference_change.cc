// Table 4: effect of changing the reference on SPR's monetary cost.
//
// IMDb-like dataset at default settings; the maximum number of reference
// changes in the partition phase varies over {0, 1, 2, 4, 8, 16}. The paper
// reports a shallow optimum around 2-4 changes (91310 -> ~86400 microtasks).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"

int main() {
  using namespace crowdtopk;
  const int64_t runs = util::BenchRuns(10);
  const uint64_t seed = util::BenchSeed();
  bench::PrintPreamble(
      "Table 4: effect of changing the reference (IMDb-like, defaults)\n"
      "(paper: 0 changes=91310, optimum ~86400 at 2-4 changes)",
      runs, seed);

  auto imdb = data::MakeImdbLike(seed);
  const judgment::ComparisonOptions options =
      bench::DefaultComparisonOptions();

  util::TablePrinter table("SPR TMC vs max reference changes");
  table.SetHeader({"Times", "0", "1", "2", "4", "8", "16"});
  std::vector<std::string> work_row = {"Work."};
  std::vector<std::string> ndcg_row = {"NDCG"};
  for (int64_t changes : {0, 1, 2, 4, 8, 16}) {
    core::SprOptions spr_options;
    spr_options.comparison = options;
    spr_options.max_reference_changes = changes;
    core::Spr spr(spr_options);
    const bench::Averages averages =
        bench::AverageRuns(*imdb, &spr, bench::DefaultK(), runs, seed + 1);
    work_row.push_back(util::FormatDouble(averages.tmc, 0));
    ndcg_row.push_back(util::FormatDouble(averages.ndcg, 3));
  }
  table.AddRow(work_row);
  table.AddRow(ndcg_row);
  table.Print();
  return 0;
}
