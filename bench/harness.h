// Shared scaffolding for the paper-reproduction benchmark harnesses.
//
// Every bench binary prints the rows of one paper table/figure. Common knobs
// come from the environment so the binaries run argument-free:
//   CROWDTOPK_RUNS      repetitions per experiment point (paper: 100; the
//                       default here is smaller so a full `for b in bench/*`
//                       sweep finishes quickly)
//   CROWDTOPK_SEED      master seed (default 20170514)
//   CROWDTOPK_JOBS      worker threads for the repetitions of one experiment
//                       point (exec/run_engine.h). 1 = legacy serial path,
//                       0/unset = hardware concurrency. Output tables are
//                       bit-identical for every value: run r's seed is
//                       util::SplitSeed(seed, r) regardless of which thread
//                       executes it, and per-run records are reduced in run
//                       order.
//   CROWDTOPK_REGISTRY  JSONL journal path; completed (experiment, point,
//                       run) records are appended there and skipped on the
//                       next invocation, so interrupted sweeps resume.
//   CROWDTOPK_PROGRESS  =1 reports runs/points completed on stderr.
//   CROWDTOPK_TRACE     =1 attaches a telemetry recorder to traced runs and
//                       writes a JSONL trace + per-phase CSV per experiment
//                       point into CROWDTOPK_TRACE_DIR (default "."); set
//                       CROWDTOPK_TRACE_ALL_RUNS=1 to trace every repetition
//                       instead of just the first. Before dumping, the
//                       harness CHECKs that the trace's per-phase TMC/round
//                       totals equal the platform's aggregate counters.
//                       Schema and reduction recipes: docs/OBSERVABILITY.md.

#ifndef CROWDTOPK_BENCH_HARNESS_H_
#define CROWDTOPK_BENCH_HARNESS_H_

#include <cctype>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/heap_sort.h"
#include "exec/run_engine.h"
#include "baselines/pbr.h"
#include "baselines/quick_select.h"
#include "baselines/tournament_tree.h"
#include "core/spr.h"
#include "core/topk_algorithm.h"
#include "crowd/platform.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "metrics/ranking_metrics.h"
#include "metrics/trace_aggregate.h"
#include "telemetry/export.h"
#include "telemetry/recorder.h"
#include "util/check.h"
#include "util/env.h"
#include "util/random.h"
#include "util/table.h"

namespace crowdtopk::bench {

// Table 6 defaults (bold entries).
inline judgment::ComparisonOptions DefaultComparisonOptions() {
  judgment::ComparisonOptions options;
  options.alpha = 0.02;       // 1 - alpha = 0.98
  options.budget = 1000;      // B
  options.min_workload = 30;  // I
  options.batch_size = 30;    // eta
  options.estimator = judgment::Estimator::kStudent;
  return options;
}

inline int64_t DefaultK() { return 10; }

struct Averages {
  double tmc = 0.0;
  double rounds = 0.0;
  double ndcg = 0.0;
  double precision = 0.0;
};

// Sanitises a display name ("SPR", "TourTree") into a file-name token.
inline std::string TraceFileToken(const std::string& name) {
  std::string token;
  for (char c : name) {
    token += std::isalnum(static_cast<unsigned char>(c))
                 ? static_cast<char>(std::tolower(c))
                 : '_';
  }
  return token.empty() ? "algo" : token;
}

// Monotone id distinguishing the experiment points of one bench binary
// (each AverageRuns/AverageOver call is one point). Bench binaries execute
// their points in a fixed order, so the id is stable across invocations —
// which is what lets the run registry match a resumed sweep's points to the
// interrupted one's.
inline int64_t NextTracePointId() {
  static int64_t next = 0;
  return next++;
}

// The process-wide experiment engine, configured from the environment:
// CROWDTOPK_JOBS worker threads, the CROWDTOPK_REGISTRY resume journal, and
// a stderr progress reporter under CROWDTOPK_PROGRESS=1.
inline exec::RunEngine& Engine() {
  static exec::RunEngine* engine = [] {
    exec::RunEngine::Options options;
    options.jobs = util::BenchJobs();
    const std::string registry_path = util::RegistryPath();
    if (!registry_path.empty()) {
      options.registry = new exec::RunRegistry(registry_path);
    }
    if (util::ProgressEnabled()) {
      options.progress = [](const exec::RunKey& key, int64_t done,
                            int64_t total) {
        // fprintf is atomic per call, so concurrent reports interleave by
        // whole lines at worst.
        std::fprintf(stderr, "%s point %lld: %lld/%lld runs\r%s",
                     key.experiment.c_str(),
                     static_cast<long long>(key.point),
                     static_cast<long long>(done),
                     static_cast<long long>(total),
                     done == total ? "\n" : "");
      };
    }
    return new exec::RunEngine(options);
  }();
  return *engine;
}

// Runs `fn(run, run_seed)` for each repetition on the experiment engine and
// reduces the returned records to canonical-order column means. The generic
// entry point for benches whose per-run record is not the standard
// Averages quadruple (wall-clock simulations, partition ablations, ...).
// `fn` must confine its side effects to its own run; run_seed is
// util::SplitSeed(seed, run).
inline std::vector<double> AverageOver(
    int64_t runs, uint64_t seed,
    const std::function<std::vector<double>(int64_t, uint64_t)>& fn) {
  return Engine().RunMean({util::ProgramName(), NextTracePointId()}, runs,
                          seed, fn);
}

// Verifies the trace agrees with the platform's own accounting, then dumps
// `<dir>/<bench>_<algo>_p<point>_r<run>.trace.jsonl` plus a sibling
// `.phases.csv` with the rolled-up per-phase TMC/latency decomposition.
inline void DumpTrace(const telemetry::TraceRecorder& recorder,
                      const crowd::CrowdPlatform& platform,
                      const std::string& algorithm_name, int64_t point,
                      int64_t run) {
  const metrics::PhaseStat totals =
      metrics::TraceTotals(recorder.events());
  CROWDTOPK_CHECK_EQ(totals.microtasks, platform.total_microtasks());
  CROWDTOPK_CHECK_EQ(totals.rounds, platform.rounds());

  char suffix[64];
  std::snprintf(suffix, sizeof(suffix), "_p%lld_r%lld",
                static_cast<long long>(point), static_cast<long long>(run));
  const std::string stem = util::TraceDir() + "/" + util::ProgramName() +
                           "_" + TraceFileToken(algorithm_name) + suffix;
  const util::Status status =
      telemetry::WriteJsonlFile(recorder.events(), stem + ".trace.jsonl");
  if (!status.ok()) {
    std::fprintf(stderr, "trace: %s\n", status.ToString().c_str());
    return;
  }
  metrics::PhaseTable(metrics::AggregateByPhaseRollup(recorder.events()),
                      algorithm_name)
      .WriteCsv(stem + ".phases.csv");
  std::fprintf(stderr, "trace: wrote %s.trace.jsonl\n", stem.c_str());
}

// Runs `algorithm` `runs` times on fresh platforms and averages cost,
// latency, and quality. Repetitions are fanned out on the experiment engine
// (CROWDTOPK_JOBS workers); run r is seeded with util::SplitSeed(seed, r) —
// a pure function of (seed, r), unlike the sequential seeder the serial
// loop used to draw from, whose r-th value depended on draw order and so
// would not survive parallel dispatch — and the per-run records are reduced
// in run order, so the result is bit-identical for every worker count.
// With CROWDTOPK_TRACE=1 each traced run additionally dumps a telemetry
// trace (see DumpTrace); the recorder is created inside the run's task, so
// it is owned by exactly one thread. `jobs_override` > 0 forces a worker
// count for this point (tests use it to pit 8 jobs against 1).
inline Averages AverageRunsWithJobs(const data::Dataset& dataset,
                                    core::TopKAlgorithm* algorithm, int64_t k,
                                    int64_t runs, uint64_t seed,
                                    int64_t jobs_override = 0) {
  const bool trace = util::TraceEnabled();
  const bool trace_all = trace && util::TraceAllRuns();
  const int64_t point = NextTracePointId();
  // Algorithms whose Run mutates the algorithm object cannot share it
  // across concurrent repetitions; fall back to the serial path for them.
  if (!algorithm->concurrent_runs_safe()) jobs_override = 1;
  const std::vector<double> means = Engine().RunMean(
      {util::ProgramName(), point}, runs, seed,
      [&](int64_t r, uint64_t run_seed) -> std::vector<double> {
        crowd::CrowdPlatform platform(&dataset, run_seed);
        telemetry::TraceRecorder recorder;
        if (trace && (trace_all || r == 0)) platform.SetRecorder(&recorder);
        const core::TopKResult result = algorithm->Run(&platform, k);
        if (platform.recorder() != nullptr) {
          DumpTrace(recorder, platform, algorithm->name(), point, r);
        }
        return {static_cast<double>(result.total_microtasks),
                static_cast<double>(result.rounds),
                metrics::Ndcg(dataset, result.items, k),
                metrics::PrecisionAtK(dataset, result.items, k)};
      },
      jobs_override);
  Averages averages;
  if (means.empty()) return averages;  // runs == 0
  averages.tmc = means[0];
  averages.rounds = means[1];
  averages.ndcg = means[2];
  averages.precision = means[3];
  return averages;
}

inline Averages AverageRuns(const data::Dataset& dataset,
                            core::TopKAlgorithm* algorithm, int64_t k,
                            int64_t runs, uint64_t seed) {
  return AverageRunsWithJobs(dataset, algorithm, k, runs, seed);
}

// The four confidence-aware contenders of Sections 6.3/6.4 (SPR + the three
// traditional baselines), built for one comparison-options setting.
inline std::vector<std::unique_ptr<core::TopKAlgorithm>>
ConfidenceAwareMethods(const judgment::ComparisonOptions& options) {
  std::vector<std::unique_ptr<core::TopKAlgorithm>> methods;
  core::SprOptions spr_options;
  spr_options.comparison = options;
  methods.push_back(std::make_unique<core::Spr>(spr_options));
  methods.push_back(std::make_unique<baselines::TournamentTree>(options));
  methods.push_back(std::make_unique<baselines::HeapSortTopK>(options));
  methods.push_back(std::make_unique<baselines::QuickSelectTopK>(options));
  return methods;
}

inline void PrintPreamble(const std::string& what, int64_t runs,
                          uint64_t seed) {
  std::printf("%s\n", what.c_str());
  std::printf(
      "runs/point=%lld seed=%llu (override: CROWDTOPK_RUNS, "
      "CROWDTOPK_SEED)\n\n",
      static_cast<long long>(runs), static_cast<unsigned long long>(seed));
}

}  // namespace crowdtopk::bench

#endif  // CROWDTOPK_BENCH_HARNESS_H_
