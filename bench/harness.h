// Shared scaffolding for the paper-reproduction benchmark harnesses.
//
// Every bench binary prints the rows of one paper table/figure. Common knobs
// come from the environment so the binaries run argument-free:
//   CROWDTOPK_RUNS  repetitions per experiment point (paper: 100; default
//                   here is smaller so a full `for b in bench/*` sweep
//                   finishes quickly on one core)
//   CROWDTOPK_SEED  master seed (default 20170514)

#ifndef CROWDTOPK_BENCH_HARNESS_H_
#define CROWDTOPK_BENCH_HARNESS_H_

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/heap_sort.h"
#include "baselines/pbr.h"
#include "baselines/quick_select.h"
#include "baselines/tournament_tree.h"
#include "core/spr.h"
#include "core/topk_algorithm.h"
#include "crowd/platform.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "metrics/ranking_metrics.h"
#include "util/env.h"
#include "util/random.h"
#include "util/table.h"

namespace crowdtopk::bench {

// Table 6 defaults (bold entries).
inline judgment::ComparisonOptions DefaultComparisonOptions() {
  judgment::ComparisonOptions options;
  options.alpha = 0.02;       // 1 - alpha = 0.98
  options.budget = 1000;      // B
  options.min_workload = 30;  // I
  options.batch_size = 30;    // eta
  options.estimator = judgment::Estimator::kStudent;
  return options;
}

inline int64_t DefaultK() { return 10; }

struct Averages {
  double tmc = 0.0;
  double rounds = 0.0;
  double ndcg = 0.0;
  double precision = 0.0;
};

// Runs `algorithm` `runs` times on fresh platforms (seeds derived from
// `seed`) and averages cost, latency, and quality.
inline Averages AverageRuns(const data::Dataset& dataset,
                            core::TopKAlgorithm* algorithm, int64_t k,
                            int64_t runs, uint64_t seed) {
  Averages averages;
  util::Rng seeder(seed);
  for (int64_t r = 0; r < runs; ++r) {
    crowd::CrowdPlatform platform(&dataset, seeder.NextUint64());
    const core::TopKResult result = algorithm->Run(&platform, k);
    averages.tmc += static_cast<double>(result.total_microtasks);
    averages.rounds += static_cast<double>(result.rounds);
    averages.ndcg += metrics::Ndcg(dataset, result.items, k);
    averages.precision += metrics::PrecisionAtK(dataset, result.items, k);
  }
  const double d = static_cast<double>(runs);
  averages.tmc /= d;
  averages.rounds /= d;
  averages.ndcg /= d;
  averages.precision /= d;
  return averages;
}

// The four confidence-aware contenders of Sections 6.3/6.4 (SPR + the three
// traditional baselines), built for one comparison-options setting.
inline std::vector<std::unique_ptr<core::TopKAlgorithm>>
ConfidenceAwareMethods(const judgment::ComparisonOptions& options) {
  std::vector<std::unique_ptr<core::TopKAlgorithm>> methods;
  core::SprOptions spr_options;
  spr_options.comparison = options;
  methods.push_back(std::make_unique<core::Spr>(spr_options));
  methods.push_back(std::make_unique<baselines::TournamentTree>(options));
  methods.push_back(std::make_unique<baselines::HeapSortTopK>(options));
  methods.push_back(std::make_unique<baselines::QuickSelectTopK>(options));
  return methods;
}

inline void PrintPreamble(const std::string& what, int64_t runs,
                          uint64_t seed) {
  std::printf("%s\n", what.c_str());
  std::printf(
      "runs/point=%lld seed=%llu (override: CROWDTOPK_RUNS, "
      "CROWDTOPK_SEED)\n\n",
      static_cast<long long>(runs), static_cast<unsigned long long>(seed));
}

}  // namespace crowdtopk::bench

#endif  // CROWDTOPK_BENCH_HARNESS_H_
