// Shared scaffolding for the paper-reproduction benchmark harnesses.
//
// Every bench binary prints the rows of one paper table/figure. Common knobs
// come from the environment so the binaries run argument-free:
//   CROWDTOPK_RUNS   repetitions per experiment point (paper: 100; default
//                    here is smaller so a full `for b in bench/*` sweep
//                    finishes quickly on one core)
//   CROWDTOPK_SEED   master seed (default 20170514)
//   CROWDTOPK_TRACE  =1 attaches a telemetry recorder to traced runs and
//                    writes a JSONL trace + per-phase CSV per experiment
//                    point into CROWDTOPK_TRACE_DIR (default "."); set
//                    CROWDTOPK_TRACE_ALL_RUNS=1 to trace every repetition
//                    instead of just the first. Before dumping, the
//                    harness CHECKs that the trace's per-phase TMC/round
//                    totals equal the platform's aggregate counters.
//                    Schema and reduction recipes: docs/OBSERVABILITY.md.

#ifndef CROWDTOPK_BENCH_HARNESS_H_
#define CROWDTOPK_BENCH_HARNESS_H_

#include <cctype>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/heap_sort.h"
#include "baselines/pbr.h"
#include "baselines/quick_select.h"
#include "baselines/tournament_tree.h"
#include "core/spr.h"
#include "core/topk_algorithm.h"
#include "crowd/platform.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "metrics/ranking_metrics.h"
#include "metrics/trace_aggregate.h"
#include "telemetry/export.h"
#include "telemetry/recorder.h"
#include "util/check.h"
#include "util/env.h"
#include "util/random.h"
#include "util/table.h"

namespace crowdtopk::bench {

// Table 6 defaults (bold entries).
inline judgment::ComparisonOptions DefaultComparisonOptions() {
  judgment::ComparisonOptions options;
  options.alpha = 0.02;       // 1 - alpha = 0.98
  options.budget = 1000;      // B
  options.min_workload = 30;  // I
  options.batch_size = 30;    // eta
  options.estimator = judgment::Estimator::kStudent;
  return options;
}

inline int64_t DefaultK() { return 10; }

struct Averages {
  double tmc = 0.0;
  double rounds = 0.0;
  double ndcg = 0.0;
  double precision = 0.0;
};

// Sanitises a display name ("SPR", "TourTree") into a file-name token.
inline std::string TraceFileToken(const std::string& name) {
  std::string token;
  for (char c : name) {
    token += std::isalnum(static_cast<unsigned char>(c))
                 ? static_cast<char>(std::tolower(c))
                 : '_';
  }
  return token.empty() ? "algo" : token;
}

// Monotone id distinguishing the experiment points of one bench binary
// (each AverageRuns call is one point).
inline int64_t NextTracePointId() {
  static int64_t next = 0;
  return next++;
}

// Verifies the trace agrees with the platform's own accounting, then dumps
// `<dir>/<bench>_<algo>_p<point>_r<run>.trace.jsonl` plus a sibling
// `.phases.csv` with the rolled-up per-phase TMC/latency decomposition.
inline void DumpTrace(const telemetry::TraceRecorder& recorder,
                      const crowd::CrowdPlatform& platform,
                      const std::string& algorithm_name, int64_t point,
                      int64_t run) {
  const metrics::PhaseStat totals =
      metrics::TraceTotals(recorder.events());
  CROWDTOPK_CHECK_EQ(totals.microtasks, platform.total_microtasks());
  CROWDTOPK_CHECK_EQ(totals.rounds, platform.rounds());

  char suffix[64];
  std::snprintf(suffix, sizeof(suffix), "_p%lld_r%lld",
                static_cast<long long>(point), static_cast<long long>(run));
  const std::string stem = util::TraceDir() + "/" + util::ProgramName() +
                           "_" + TraceFileToken(algorithm_name) + suffix;
  const util::Status status =
      telemetry::WriteJsonlFile(recorder.events(), stem + ".trace.jsonl");
  if (!status.ok()) {
    std::fprintf(stderr, "trace: %s\n", status.ToString().c_str());
    return;
  }
  metrics::PhaseTable(metrics::AggregateByPhaseRollup(recorder.events()),
                      algorithm_name)
      .WriteCsv(stem + ".phases.csv");
  std::fprintf(stderr, "trace: wrote %s.trace.jsonl\n", stem.c_str());
}

// Runs `algorithm` `runs` times on fresh platforms (seeds derived from
// `seed`) and averages cost, latency, and quality. With CROWDTOPK_TRACE=1
// each traced run additionally dumps a telemetry trace (see DumpTrace).
inline Averages AverageRuns(const data::Dataset& dataset,
                            core::TopKAlgorithm* algorithm, int64_t k,
                            int64_t runs, uint64_t seed) {
  Averages averages;
  util::Rng seeder(seed);
  const bool trace = util::TraceEnabled();
  const bool trace_all = trace && util::TraceAllRuns();
  const int64_t point = trace ? NextTracePointId() : 0;
  for (int64_t r = 0; r < runs; ++r) {
    crowd::CrowdPlatform platform(&dataset, seeder.NextUint64());
    telemetry::TraceRecorder recorder;
    if (trace && (trace_all || r == 0)) platform.SetRecorder(&recorder);
    const core::TopKResult result = algorithm->Run(&platform, k);
    if (platform.recorder() != nullptr) {
      DumpTrace(recorder, platform, algorithm->name(), point, r);
    }
    averages.tmc += static_cast<double>(result.total_microtasks);
    averages.rounds += static_cast<double>(result.rounds);
    averages.ndcg += metrics::Ndcg(dataset, result.items, k);
    averages.precision += metrics::PrecisionAtK(dataset, result.items, k);
  }
  const double d = static_cast<double>(runs);
  averages.tmc /= d;
  averages.rounds /= d;
  averages.ndcg /= d;
  averages.precision /= d;
  return averages;
}

// The four confidence-aware contenders of Sections 6.3/6.4 (SPR + the three
// traditional baselines), built for one comparison-options setting.
inline std::vector<std::unique_ptr<core::TopKAlgorithm>>
ConfidenceAwareMethods(const judgment::ComparisonOptions& options) {
  std::vector<std::unique_ptr<core::TopKAlgorithm>> methods;
  core::SprOptions spr_options;
  spr_options.comparison = options;
  methods.push_back(std::make_unique<core::Spr>(spr_options));
  methods.push_back(std::make_unique<baselines::TournamentTree>(options));
  methods.push_back(std::make_unique<baselines::HeapSortTopK>(options));
  methods.push_back(std::make_unique<baselines::QuickSelectTopK>(options));
  return methods;
}

inline void PrintPreamble(const std::string& what, int64_t runs,
                          uint64_t seed) {
  std::printf("%s\n", what.c_str());
  std::printf(
      "runs/point=%lld seed=%llu (override: CROWDTOPK_RUNS, "
      "CROWDTOPK_SEED)\n\n",
      static_cast<long long>(runs), static_cast<unsigned long long>(seed));
}

}  // namespace crowdtopk::bench

#endif  // CROWDTOPK_BENCH_HARNESS_H_
