// Figure 12: performance summary at default settings (IMDb, Book): TMC and
// latency of all confidence-aware methods against the infimum.
//
// Paper shape: SPR is the only method approaching the infimum on cost while
// keeping latency near QuickSelect's.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "core/infimum.h"

int main() {
  using namespace crowdtopk;
  const int64_t runs = util::BenchRuns(8);
  const uint64_t seed = util::BenchSeed();
  bench::PrintPreamble("Figure 12: performance summary (defaults)", runs,
                       seed);

  const judgment::ComparisonOptions options =
      bench::DefaultComparisonOptions();

  for (const char* name : {"imdb", "book"}) {
    auto dataset = data::MakeByName(name, seed);
    util::TablePrinter table(dataset->name() + ": summary");
    table.SetHeader({"Method", "TMC", "Latency", "NDCG", "Precision"});
    auto methods = bench::ConfidenceAwareMethods(options);
    for (auto& method : methods) {
      const bench::Averages averages = bench::AverageRuns(
          *dataset, method.get(), bench::DefaultK(), runs, seed + 1);
      table.AddRow({method->name(), util::FormatDouble(averages.tmc, 0),
                    util::FormatDouble(averages.rounds, 0),
                    util::FormatDouble(averages.ndcg, 3),
                    util::FormatDouble(averages.precision, 3)});
    }
    const core::InfimumEstimate inf = core::EstimateInfimum(
        *dataset, bench::DefaultK(), options, seed + 2, 3);
    table.AddRow({"Infimum", util::FormatDouble(inf.tmc, 0),
                  util::FormatDouble(inf.rounds, 0), "-", "-"});
    table.Print();
    std::printf("\n");
  }
  return 0;
}
