// Table 10 (Appendix C): upper bounds on the comparison counts of median-
// finding algorithms, next to the counts actually measured by this repo's
// implementations on random inputs.
//
// Paper bounds: Bubble/Selection (3m^2+m-2)/8, Merge 3 m log m, Heap
// m + 2m log(m/2), Quick m(m-1)/2.

#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "core/median.h"

int main() {
  using namespace crowdtopk;
  const int64_t runs = util::BenchRuns(20);
  const uint64_t seed = util::BenchSeed();
  bench::PrintPreamble(
      "Table 10: comparison bounds for choosing the median (measured vs "
      "bound)",
      runs, seed);

  const std::vector<core::MedianAlgorithm> algorithms = {
      core::MedianAlgorithm::kBubble, core::MedianAlgorithm::kSelection,
      core::MedianAlgorithm::kMerge, core::MedianAlgorithm::kHeap,
      core::MedianAlgorithm::kQuick};
  const std::vector<int64_t> sizes = {5, 9, 15, 31, 63};

  util::TablePrinter table("median comparisons: measured (bound)");
  std::vector<std::string> header = {"Algorithm"};
  for (int64_t m : sizes) header.push_back("m=" + std::to_string(m));
  table.SetHeader(header);

  util::Rng rng(seed);
  for (const auto algorithm : algorithms) {
    std::vector<std::string> row = {core::MedianAlgorithmName(algorithm)};
    for (int64_t m : sizes) {
      double total = 0.0;
      for (int64_t r = 0; r < runs; ++r) {
        // Random distinct values; the comparator ranks by value.
        std::vector<crowd::ItemId> items(m);
        std::iota(items.begin(), items.end(), 0);
        std::vector<double> value(m);
        for (double& v : value) v = rng.Uniform();
        rng.Shuffle(&items);
        const core::MedianResult result = core::FindMedian(
            items,
            [&](crowd::ItemId a, crowd::ItemId b) {
              return value[a] > value[b];
            },
            algorithm);
        total += static_cast<double>(result.comparisons);
      }
      row.push_back(
          util::FormatDouble(total / static_cast<double>(runs), 0) + " (" +
          util::FormatDouble(core::MedianComparisonBound(algorithm, m), 0) +
          ")");
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\nexpected: every measured count is at or below its Table 10 bound;\n"
      "Heap/Merge scale near-linearithmically, Bubble/Selection "
      "quadratically\n");
  return 0;
}
