// Microbenchmarks of the statistical primitives on the comparison process
// hot path (google-benchmark).

#include <benchmark/benchmark.h>

#include "stats/binomial.h"
#include "stats/normal.h"
#include "stats/running_stats.h"
#include "stats/special_functions.h"
#include "stats/student_t.h"
#include "util/random.h"

namespace {

void BM_NormalCdf(benchmark::State& state) {
  double z = -4.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(crowdtopk::stats::NormalCdf(z));
    z += 1e-4;
    if (z > 4.0) z = -4.0;
  }
}
BENCHMARK(BM_NormalCdf);

void BM_NormalQuantile(benchmark::State& state) {
  double p = 0.001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(crowdtopk::stats::NormalQuantile(p));
    p += 1e-5;
    if (p > 0.999) p = 0.001;
  }
}
BENCHMARK(BM_NormalQuantile);

void BM_IncompleteBeta(benchmark::State& state) {
  double x = 0.01;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crowdtopk::stats::RegularizedIncompleteBeta(14.5, 0.5, x));
    x += 1e-4;
    if (x > 0.99) x = 0.01;
  }
}
BENCHMARK(BM_IncompleteBeta);

void BM_StudentTQuantileUncached(benchmark::State& state) {
  int df = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(crowdtopk::stats::StudentTQuantile(0.99, df));
    if (++df > 2000) df = 2;
  }
}
BENCHMARK(BM_StudentTQuantileUncached);

void BM_TCriticalCached(benchmark::State& state) {
  crowdtopk::stats::TCriticalCache cache(0.02);
  // Warm the realistic df range once.
  for (int df = 1; df <= 4000; ++df) cache.Get(df);
  int df = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Get(df));
    if (++df > 4000) df = 1;
  }
}
BENCHMARK(BM_TCriticalCached);

void BM_BinomialTail(benchmark::State& state) {
  int k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crowdtopk::stats::BinomialTailAtLeast(31, k % 32, 0.4));
    ++k;
  }
}
BENCHMARK(BM_BinomialTail);

void BM_RunningStatsAdd(benchmark::State& state) {
  crowdtopk::util::Rng rng(1);
  crowdtopk::stats::RunningStats stats;
  for (auto _ : state) {
    stats.Add(rng.Uniform());
    benchmark::DoNotOptimize(stats.Mean());
  }
}
BENCHMARK(BM_RunningStatsAdd);

}  // namespace

BENCHMARK_MAIN();
