// Figure 9: effect of item cardinality on TMC and query latency (IMDb,
// Book). Each point runs the methods on a random N-item subset.
//
// Paper shape: all methods grow with N; QuickSelect, TourTree and HeapSort
// are much more sensitive than SPR, whose trend stays closest to the
// infimum.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "core/infimum.h"
#include "data/subset_dataset.h"

int main() {
  using namespace crowdtopk;
  const int64_t runs = util::BenchRuns(5);
  const uint64_t seed = util::BenchSeed();
  bench::PrintPreamble("Figure 9: effect of item cardinality N", runs, seed);

  const judgment::ComparisonOptions options =
      bench::DefaultComparisonOptions();

  for (const char* name : {"imdb", "book"}) {
    auto dataset = data::MakeByName(name, seed);
    std::vector<int64_t> sizes = {25, 50, 100, 200, 400};
    if (dataset->num_items() > 800) sizes.push_back(800);
    sizes.push_back(dataset->num_items());  // "All"

    util::TablePrinter tmc_table(dataset->name() + ": TMC vs N");
    util::TablePrinter lat_table(dataset->name() + ": latency vs N");
    std::vector<std::string> header = {"Method"};
    for (int64_t n : sizes) {
      header.push_back(n == dataset->num_items() ? "All"
                                                 : std::to_string(n));
    }
    tmc_table.SetHeader(header);
    lat_table.SetHeader(header);

    auto methods = bench::ConfidenceAwareMethods(options);
    std::vector<std::vector<std::string>> tmc_rows, lat_rows;
    for (auto& method : methods) {
      tmc_rows.push_back({method->name()});
      lat_rows.push_back({method->name()});
    }
    std::vector<std::string> inf_tmc = {"Infimum"};
    std::vector<std::string> inf_lat = {"Infimum"};

    util::Rng subset_rng(seed ^ 0xf19);
    for (int64_t n : sizes) {
      auto subset = data::RandomSubset(dataset.get(), n, &subset_rng);
      const int64_t k = std::min<int64_t>(bench::DefaultK(), n);
      for (size_t m = 0; m < methods.size(); ++m) {
        const bench::Averages averages = bench::AverageRuns(
            *subset, methods[m].get(), k, runs, seed + n);
        tmc_rows[m].push_back(util::FormatDouble(averages.tmc, 0));
        lat_rows[m].push_back(util::FormatDouble(averages.rounds, 0));
      }
      const core::InfimumEstimate inf =
          core::EstimateInfimum(*subset, k, options, seed + 7 * n, 2);
      inf_tmc.push_back(util::FormatDouble(inf.tmc, 0));
      inf_lat.push_back(util::FormatDouble(inf.rounds, 0));
    }
    for (auto& row : tmc_rows) tmc_table.AddRow(row);
    tmc_table.AddRow(inf_tmc);
    for (auto& row : lat_rows) lat_table.AddRow(row);
    lat_table.AddRow(inf_lat);

    tmc_table.Print();
    std::printf("\n");
    lat_table.Print();
    std::printf("\n");
  }
  return 0;
}
