# Benchmark harnesses: one binary per paper table/figure. Included from the
# top-level CMakeLists (not add_subdirectory) so that build/bench/ contains
# ONLY the runnable binaries and `for b in build/bench/*; do $b; done` works
# without tripping over CMake bookkeeping files.

function(crowdtopk_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cc)
  target_link_libraries(${name} PRIVATE crowdtopk)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR})
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

crowdtopk_add_bench(table3_judgment_models)
crowdtopk_add_bench(table4_reference_change)
crowdtopk_add_bench(table7_tmc)
crowdtopk_add_bench(table10_median_bounds)
crowdtopk_add_bench(fig08_vary_k)
crowdtopk_add_bench(fig09_vary_n)
crowdtopk_add_bench(fig10_vary_confidence)
crowdtopk_add_bench(fig11_vary_budget)
crowdtopk_add_bench(fig12_summary)
crowdtopk_add_bench(fig13_accuracy)
crowdtopk_add_bench(fig14_nonconfidence)
crowdtopk_add_bench(fig15_nb_minus_n)
crowdtopk_add_bench(fig16_sweet_spot)
crowdtopk_add_bench(fig17_stein_vs_student)
crowdtopk_add_bench(fig18_21_jester_photo)
crowdtopk_add_bench(people_age)
crowdtopk_add_bench(ablation_batch_size)
crowdtopk_add_bench(ablation_reference_selection)
crowdtopk_add_bench(ablation_one_sided)
crowdtopk_add_bench(ablation_worker_quality)
crowdtopk_add_bench(ablation_anytime_validity)
crowdtopk_add_bench(ablation_marketplace)
crowdtopk_add_bench(ablation_interval_refinement)
crowdtopk_add_bench(ablation_cache_reuse)
crowdtopk_add_bench(ablation_warm_restart)

crowdtopk_add_bench(micro_stats)
target_link_libraries(micro_stats PRIVATE benchmark::benchmark)
