// Figure 11: effect of the per-pair comparison budget B on TMC and latency
// (IMDb, Book).
//
// Paper shape: cost and latency increase monotonically in B for every
// method (a larger budget lets difficult comparisons keep buying); SPR
// stays closest to the infimum.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "core/infimum.h"

int main() {
  using namespace crowdtopk;
  const int64_t runs = util::BenchRuns(5);
  const uint64_t seed = util::BenchSeed();
  bench::PrintPreamble("Figure 11: effect of the pairwise budget B", runs,
                       seed);

  const std::vector<int64_t> budgets = {30, 100, 200, 500, 1000, 2000, 4000};

  for (const char* name : {"imdb", "book"}) {
    auto dataset = data::MakeByName(name, seed);
    util::TablePrinter tmc_table(dataset->name() + ": TMC vs B");
    util::TablePrinter lat_table(dataset->name() + ": latency vs B");
    std::vector<std::string> header = {"Method"};
    for (int64_t b : budgets) header.push_back("B=" + std::to_string(b));
    tmc_table.SetHeader(header);
    lat_table.SetHeader(header);

    std::vector<std::vector<std::string>> tmc_rows(4), lat_rows(4);
    std::vector<std::string> inf_tmc = {"Infimum"};
    std::vector<std::string> inf_lat = {"Infimum"};
    bool names_set = false;
    for (int64_t budget : budgets) {
      judgment::ComparisonOptions options =
          bench::DefaultComparisonOptions();
      options.budget = budget;
      auto methods = bench::ConfidenceAwareMethods(options);
      for (size_t m = 0; m < methods.size(); ++m) {
        if (!names_set) {
          tmc_rows[m].push_back(methods[m]->name());
          lat_rows[m].push_back(methods[m]->name());
        }
        const bench::Averages averages = bench::AverageRuns(
            *dataset, methods[m].get(), bench::DefaultK(), runs,
            seed + budget);
        tmc_rows[m].push_back(util::FormatDouble(averages.tmc, 0));
        lat_rows[m].push_back(util::FormatDouble(averages.rounds, 0));
      }
      names_set = true;
      const core::InfimumEstimate inf = core::EstimateInfimum(
          *dataset, bench::DefaultK(), options, seed + 3 * budget, 2);
      inf_tmc.push_back(util::FormatDouble(inf.tmc, 0));
      inf_lat.push_back(util::FormatDouble(inf.rounds, 0));
    }
    for (auto& row : tmc_rows) tmc_table.AddRow(row);
    tmc_table.AddRow(inf_tmc);
    for (auto& row : lat_rows) lat_table.AddRow(row);
    lat_table.AddRow(inf_lat);
    tmc_table.Print();
    std::printf("\n");
    lat_table.Print();
    std::printf("\n");
  }
  return 0;
}
