// Ablation (durable state): TMC saved by warm-restarting the judgment
// cache from a previous generation's snapshot (src/persist,
// docs/PERSISTENCE.md).
//
// Workload: a "day 1" serving replay of Q top-k queries over n-item
// subsets of a shared universe, cache on, persistence on — it leaves a
// final snapshot carrying the full cache image. Then the identical trace
// replays twice as fresh generations: cold (empty cache) and warm (cache
// preloaded from the day-1 snapshot, the --warm code path). Reported:
// total microtasks, cache hits, restored pairs, and the warm saving.
//
// Expected: the warm replay's TMC collapses towards the marginal cost of
// confirming cached verdicts (>= 50% saved at default knobs), because
// every pair the day-1 run bought is served from the restored image.
//
// Knobs (bench/harness.h has the shared ones):
//   CROWDTOPK_CACHE_QUERIES   queries per replay            (default 12)
//   CROWDTOPK_CACHE_SUBSET    items per query subset        (default 40)
//   CROWDTOPK_CACHE_UNIVERSE  items in the shared universe  (default 80)
//   CROWDTOPK_CACHE_K         top-k per query               (default 10)
//   CROWDTOPK_RUNS, CROWDTOPK_SEED, CROWDTOPK_JOBS as everywhere else.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "data/subset_dataset.h"
#include "persist/recovery.h"
#include "serve/query_service.h"
#include "util/check.h"
#include "util/file_io.h"

int main() {
  using namespace crowdtopk;
  const int64_t runs = util::BenchRuns(3);
  const uint64_t seed = util::BenchSeed();
  const int64_t queries = util::GetEnvInt64("CROWDTOPK_CACHE_QUERIES", 12);
  const int64_t subset_n = util::GetEnvInt64("CROWDTOPK_CACHE_SUBSET", 40);
  const int64_t universe_n = util::GetEnvInt64("CROWDTOPK_CACHE_UNIVERSE", 80);
  const int64_t k = util::GetEnvInt64("CROWDTOPK_CACHE_K", 10);
  bench::PrintPreamble("Ablation: warm restart from a durable snapshot",
                       runs, seed);
  std::printf(
      "%lld queries/replay over %lld-item subsets of a %lld-item universe, "
      "k=%lld; a persisted day-1 run, then cold vs snapshot-warmed restarts "
      "of the identical trace\n\n",
      static_cast<long long>(queries), static_cast<long long>(subset_n),
      static_cast<long long>(universe_n), static_cast<long long>(k));

  const judgment::ComparisonOptions comparison =
      bench::DefaultComparisonOptions();
  const auto methods = bench::ConfidenceAwareMethods(comparison);

  // Record: {tmc_day1, tmc_cold, tmc_warm, hits_warm, restored}.
  const std::vector<double> mean = bench::AverageOver(
      runs, seed, [&](int64_t run, uint64_t run_seed) -> std::vector<double> {
        util::Rng rng(run_seed);
        const auto universe = data::MakeUniformLadder(universe_n, 10.0, 2.0);
        std::vector<std::unique_ptr<data::SubsetDataset>> subsets;
        for (int64_t d = 0; d < queries; ++d) {
          subsets.push_back(
              data::RandomSubset(universe.get(), subset_n, &rng));
        }
        std::vector<serve::QueryRequest> requests(queries);
        for (int64_t q = 0; q < queries; ++q) {
          const data::SubsetDataset* subset = subsets[q].get();
          requests[q].algorithm = methods[q % methods.size()].get();
          requests[q].dataset = subset;
          requests[q].k = k;
          requests[q].cache_universe = 0;
          requests[q].cache_item_ids = subset->parent_ids();
        }
        const std::vector<double> arrivals(queries, 0.0);

        const auto replay = [&](const std::string& persist_dir,
                                std::vector<cache::ExportedEntry> warm,
                                double* tmc, double* hits,
                                double* restored) {
          serve::ServeOptions options;
          options.max_inflight = 1;  // FIFO: maximal reuse window
          options.jobs = 1;
          options.seed = run_seed;
          options.cache.enabled = true;
          options.warm_cache = std::move(warm);
          options.persist.dir = persist_dir;
          options.persist.wal_fsync = false;  // bench, not durability test
          serve::QueryService service(options);
          const std::vector<serve::QueryOutcome> outcomes =
              service.Replay(requests, arrivals);
          CROWDTOPK_CHECK(service.persist_status().ok());
          *tmc = *hits = 0.0;
          for (const serve::QueryOutcome& o : outcomes) {
            *tmc += static_cast<double>(o.total_microtasks);
            *hits += static_cast<double>(o.cache_hits + o.cache_inferred);
          }
          *restored = static_cast<double>(service.cache_stats().restored);
        };

        // Day 1: persist into a per-run scratch directory.
        const std::string dir =
            "/tmp/crowdtopk_warm_restart_" + std::to_string(run_seed) + "_" +
            std::to_string(run);
        double tmc_day1, hits_day1, restored_day1;
        replay(dir, {}, &tmc_day1, &hits_day1, &restored_day1);

        persist::SnapshotData snapshot;
        CROWDTOPK_CHECK(
            persist::LoadLatestSnapshot(dir, &snapshot, nullptr).ok());

        double tmc_cold, hits_cold, restored_cold;
        replay("", {}, &tmc_cold, &hits_cold, &restored_cold);
        double tmc_warm, hits_warm, restored_warm;
        replay("", snapshot.cache_entries, &tmc_warm, &hits_warm,
               &restored_warm);

        // Scratch cleanup; stray files only cost /tmp space if this fails.
        std::vector<std::string> files;
        if (util::ListDirectoryFiles(dir, &files).ok()) {
          for (const std::string& f : files) {
            (void)!util::RemoveFileIfExists(dir + "/" + f).ok();
          }
        }
        return {tmc_day1, tmc_cold, tmc_warm, hits_warm, restored_warm};
      });

  util::TablePrinter table("TMC: cold restart vs snapshot-warmed restart");
  table.SetHeader({"variant", "TMC", "cache hits", "restored", "saved %"});
  table.AddRow({"day 1 (persisted)", util::FormatDouble(mean[0], 0), "-", "-",
                "-"});
  table.AddRow({"cold restart", util::FormatDouble(mean[1], 0), "-", "0",
                "0.0"});
  const double saved =
      mean[1] > 0.0 ? 100.0 * (mean[1] - mean[2]) / mean[1] : 0.0;
  table.AddRow({"warm restart", util::FormatDouble(mean[2], 0),
                util::FormatDouble(mean[3], 0),
                util::FormatDouble(mean[4], 0),
                util::FormatDouble(saved, 1)});
  table.Print();
  std::printf(
      "\nexpected: the warm restart serves day-1 pairs from the restored\n"
      "snapshot image and saves >= 50%% of the cold restart's TMC\n");
  return 0;
}
