// Figure 17 (Appendix F): SPR with SteinComp vs SPR with StudentComp (TMC as
// a function of k, IMDb).
//
// Paper shape: the two estimators perform analogously, justifying Student's
// t as the default.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"

int main() {
  using namespace crowdtopk;
  const int64_t runs = util::BenchRuns(5);
  const uint64_t seed = util::BenchSeed();
  bench::PrintPreamble("Figure 17: SteinComp vs StudentComp (SPR TMC vs k)",
                       runs, seed);

  auto imdb = data::MakeImdbLike(seed);
  util::TablePrinter table("IMDb: SPR TMC by estimator");
  table.SetHeader({"Estimator", "k=1", "k=5", "k=10", "k=15", "k=20"});
  for (auto estimator :
       {judgment::Estimator::kStudent, judgment::Estimator::kStein}) {
    judgment::ComparisonOptions options = bench::DefaultComparisonOptions();
    options.estimator = estimator;
    core::SprOptions spr_options;
    spr_options.comparison = options;
    core::Spr spr(spr_options);
    std::vector<std::string> row = {
        estimator == judgment::Estimator::kStudent ? "Student" : "Stein"};
    for (int64_t k : {1, 5, 10, 15, 20}) {
      const bench::Averages averages =
          bench::AverageRuns(*imdb, &spr, k, runs, seed + k);
      row.push_back(util::FormatDouble(averages.tmc, 0));
    }
    table.AddRow(row);
  }
  table.Print();
  return 0;
}
