// Table 3: accuracy and workload of the three judgment models.
#include <cmath>
//
// 30 popular movies (435 pairs); COMP(o_i, o_j) runs with B = infinity at
// confidence levels {0.95, 0.98, 0.99} under:
//   - pairwise binary judgments + Hoeffding estimation (Busa-Fekete [8]),
//   - pairwise preference judgments + Student's t (Algorithm 1),
//   - pairwise preference judgments + Stein's estimation (Algorithm 5),
// plus the graded judgment model at fixed per-item workloads.

#include <cstdio>
#include <numeric>
#include <vector>

#include "bench/harness.h"
#include "judgment/comparison.h"
#include "judgment/graded.h"

namespace {

using namespace crowdtopk;

struct ModelRow {
  double workload = 0.0;
  double accuracy = 0.0;
};

ModelRow EvaluatePairwiseModel(const data::Dataset& dataset,
                               const std::vector<crowd::ItemId>& items,
                               judgment::Estimator estimator, double alpha,
                               int64_t runs, uint64_t seed) {
  judgment::ComparisonOptions options;
  options.alpha = alpha;
  options.budget = int64_t{1} << 20;  // "B = infinity" (never binding here)
  options.min_workload = 30;
  options.batch_size = 1;  // per-sample stopping, as in Algorithm 1
  options.estimator = estimator;
  stats::TCriticalCache t_cache(alpha);

  crowd::CrowdPlatform platform(&dataset, seed);
  double total_workload = 0.0;
  double correct = 0.0;
  double decided = 0.0;
  for (size_t a = 0; a < items.size(); ++a) {
    for (size_t b = a + 1; b < items.size(); ++b) {
      for (int64_t r = 0; r < runs; ++r) {
        judgment::ComparisonSession session(items[a], items[b], &options,
                                            &t_cache);
        // Run without polluting the latency counter (Table 3 is not a
        // latency experiment).
        while (!session.Finished()) session.Step(&platform, 256);
        total_workload += static_cast<double>(session.workload());
        const bool truth_a = dataset.TrueBetter(items[a], items[b]);
        const auto outcome = session.outcome();
        if (outcome != crowd::ComparisonOutcome::kTie) {
          decided += 1.0;
          const bool said_a = outcome == crowd::ComparisonOutcome::kLeftWins;
          if (said_a == truth_a) correct += 1.0;
        }
      }
    }
  }
  const double pairs =
      static_cast<double>(items.size() * (items.size() - 1) / 2) *
      static_cast<double>(runs);
  ModelRow row;
  row.workload = total_workload / pairs;
  row.accuracy = decided > 0 ? correct / decided : 0.0;
  return row;
}

ModelRow EvaluateGradedModel(const data::Dataset& dataset,
                             const std::vector<crowd::ItemId>& items,
                             int64_t workload_per_item, int64_t runs,
                             uint64_t seed) {
  crowd::CrowdPlatform platform(&dataset, seed);
  double correct = 0.0;
  double total_pairs = 0.0;
  for (int64_t r = 0; r < runs; ++r) {
    const std::vector<double> grades = judgment::CollectMeanGrades(
        items, workload_per_item, /*batch_size=*/1024, &platform);
    for (size_t a = 0; a < items.size(); ++a) {
      for (size_t b = a + 1; b < items.size(); ++b) {
        const bool truth_a = dataset.TrueBetter(items[a], items[b]);
        const bool said_a = grades[a] > grades[b];
        if (said_a == truth_a) correct += 1.0;
        total_pairs += 1.0;
      }
    }
  }
  ModelRow row;
  row.workload = static_cast<double>(workload_per_item);
  row.accuracy = correct / total_pairs;
  return row;
}

}  // namespace

int main() {
  const int64_t runs = util::BenchRuns(3);
  const uint64_t seed = util::BenchSeed();
  bench::PrintPreamble(
      "Table 3: accuracy and workload of different judgment models\n"
      "(30 popular IMDb-like movies, 435 pairs, B = infinity, I = 30;\n"
      " paper: preference needs 5.3-10.8x fewer microtasks than binary)",
      runs, seed);

  auto imdb = data::MakeImdbLike(seed);
  // 30 random popular movies, as in Section 3.2. The paper's pool (votes >
  // 100k) has visibly separated weighted ranks; we enforce a minimal
  // pairwise score gap so no single statistically-identical pair dominates
  // the B = infinity averages.
  util::Rng rng(seed ^ 0x7ab1e3);
  std::vector<crowd::ItemId> all(imdb->num_items());
  std::iota(all.begin(), all.end(), 0);
  rng.Shuffle(&all);
  constexpr double kMinGap = 0.03;  // on the 1..10 rating scale
  std::vector<crowd::ItemId> items;
  for (crowd::ItemId candidate : all) {
    bool spaced = true;
    for (crowd::ItemId chosen : items) {
      if (std::abs(imdb->TrueScore(candidate) - imdb->TrueScore(chosen)) <
          kMinGap) {
        spaced = false;
        break;
      }
    }
    if (spaced) items.push_back(candidate);
    if (items.size() == 30) break;
  }

  const std::vector<double> confidences = {0.95, 0.98, 0.99};

  util::TablePrinter table("Pairwise models");
  table.SetHeader({"Model", "Est. by", "Metric", "0.95", "0.98", "0.99"});
  struct Config {
    const char* model;
    const char* estimator_name;
    judgment::Estimator estimator;
  };
  const std::vector<Config> configs = {
      {"Binary", "Hoeffding", judgment::Estimator::kHoeffding},
      {"Preference", "Student", judgment::Estimator::kStudent},
      {"Preference", "Stein", judgment::Estimator::kStein},
  };
  for (const Config& config : configs) {
    std::vector<std::string> work_row = {config.model, config.estimator_name,
                                         "Work."};
    std::vector<std::string> acc_row = {config.model, config.estimator_name,
                                        "Acc."};
    for (double confidence : confidences) {
      const ModelRow row = EvaluatePairwiseModel(
          *imdb, items, config.estimator, 1.0 - confidence, runs, seed + 1);
      work_row.push_back(util::FormatDouble(row.workload, 1));
      acc_row.push_back(util::FormatDouble(row.accuracy, 3));
    }
    table.AddRow(work_row);
    table.AddRow(acc_row);
  }
  table.Print();

  util::TablePrinter graded("Graded model (fixed per-item workloads)");
  graded.SetHeader({"Model", "Metric", "100", "1000", "10000"});
  std::vector<std::string> acc_row = {"Graded", "Acc."};
  for (int64_t workload : {100, 1000, 10000}) {
    const ModelRow row =
        EvaluateGradedModel(*imdb, items, workload, runs, seed + 2);
    acc_row.push_back(util::FormatDouble(row.accuracy, 3));
  }
  graded.AddRow(acc_row);
  std::printf("\n");
  graded.Print();
  return 0;
}
