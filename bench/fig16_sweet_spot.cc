// Figure 16 (Appendix F): SPR's TMC as a function of the sweet-spot range c.
//
// Paper shape: the cost is stable across c in {1.25, 1.5, 1.75, 2.0}, which
// justifies fixing c = 1.5 by default.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"

int main() {
  using namespace crowdtopk;
  const int64_t runs = util::BenchRuns(10);
  const uint64_t seed = util::BenchSeed();
  bench::PrintPreamble("Figure 16: sweet spot range c (SPR TMC)", runs, seed);

  const judgment::ComparisonOptions options =
      bench::DefaultComparisonOptions();

  for (const char* name : {"imdb", "book"}) {
    auto dataset = data::MakeByName(name, seed);
    util::TablePrinter table(dataset->name() + ": SPR TMC vs c");
    table.SetHeader({"c", "1.25", "1.50", "1.75", "2.00"});
    std::vector<std::string> tmc_row = {"TMC"};
    std::vector<std::string> ndcg_row = {"NDCG"};
    for (double c : {1.25, 1.50, 1.75, 2.00}) {
      core::SprOptions spr_options;
      spr_options.comparison = options;
      spr_options.sweet_spot_c = c;
      core::Spr spr(spr_options);
      const bench::Averages averages = bench::AverageRuns(
          *dataset, &spr, bench::DefaultK(), runs, seed + 1);
      tmc_row.push_back(util::FormatDouble(averages.tmc, 0));
      ndcg_row.push_back(util::FormatDouble(averages.ndcg, 3));
    }
    table.AddRow(tmc_row);
    table.AddRow(ndcg_row);
    table.Print();
    std::printf("\n");
  }
  return 0;
}
