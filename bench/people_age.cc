// Appendix F interactive experiment: the PeopleAge query ("find the 10
// youngest of 100 women") simulated end to end.
//
// Paper: the CrowdFlower run cost 10,560 microtasks (10.56 USD at 0.1 cent
// each) with NDCG 0.917; the authors' own simulation gave 9,570 microtasks
// and NDCG 0.905 -- confirming that the simulation reflects the live crowd.
// Settings: 1 - alpha = 0.90, B = 100.

#include <cstdio>

#include "bench/harness.h"

int main() {
  using namespace crowdtopk;
  const int64_t runs = util::BenchRuns(20);
  const uint64_t seed = util::BenchSeed();
  bench::PrintPreamble(
      "PeopleAge interactive experiment (k=10 youngest, 1-alpha=0.90, "
      "B=100)\n(paper: live crowd 10560 microtasks / NDCG 0.917; simulated "
      "9570 / 0.905)",
      runs, seed);

  auto people = data::MakePeopleAgeLike(seed);
  judgment::ComparisonOptions options = bench::DefaultComparisonOptions();
  options.alpha = 0.10;
  options.budget = 100;

  core::SprOptions spr_options;
  spr_options.comparison = options;
  core::Spr spr(spr_options);
  const bench::Averages averages =
      bench::AverageRuns(*people, &spr, 10, runs, seed + 1);

  util::TablePrinter table("SPR on PeopleAge");
  table.SetHeader({"Metric", "This repo", "Paper (live)", "Paper (sim)"});
  table.AddRow({"TMC", util::FormatDouble(averages.tmc, 0), "10560", "9570"});
  table.AddRow(
      {"NDCG", util::FormatDouble(averages.ndcg, 3), "0.917", "0.905"});
  table.AddRow({"Cost (USD @0.1c)",
                util::FormatDouble(averages.tmc * 0.001, 2), "10.56",
                "9.57"});
  table.Print();
  return 0;
}
