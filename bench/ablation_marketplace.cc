// Ablation (marketplace realism): the wall-clock discrete-event simulator
// attached to the platform converts batch rounds into simulated hours and
// dollars.
//
// Calibration target: the paper's live CrowdFlower run of the PeopleAge
// query (Appendix F) took 6 h 55 min and 10.56 USD for ~10.5k microtasks,
// with workers averaging ~11 s per question (Appendix B) -- implying
// roughly 10560 * 11s / 6.92h ~ 4.7 concurrent workers. With 5 simulated
// worker slots the simulator should land in the same range.
//
// Second table: wall-clock of all confidence-aware methods on Jester with a
// 30-worker pool -- the abstract-round story (HeapSort's sequential chain
// dominates) in hours.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "crowd/simulator.h"

int main() {
  using namespace crowdtopk;
  const int64_t runs = util::BenchRuns(5);
  const uint64_t seed = util::BenchSeed();
  bench::PrintPreamble("Ablation: wall-clock marketplace simulation", runs,
                       seed);

  // ---- PeopleAge calibration against the live CrowdFlower run.
  {
    auto people = data::MakePeopleAgeLike(seed);
    judgment::ComparisonOptions options = bench::DefaultComparisonOptions();
    options.alpha = 0.10;
    options.budget = 100;
    core::SprOptions spr_options;
    spr_options.comparison = options;
    core::Spr spr(spr_options);

    // {hours, usd, microtasks} per run; the engine averages in run order.
    const std::vector<double> mean = bench::AverageOver(
        runs, seed + 1,
        [&](int64_t, uint64_t run_seed) -> std::vector<double> {
          util::Rng rng(run_seed);
          crowd::SimulatorOptions sim_options;  // 5 workers, 11 s, 0.1 cent
          crowd::WallClockSimulator simulator(sim_options, rng.NextUint64());
          crowd::CrowdPlatform platform(people.get(), rng.NextUint64());
          platform.SetLatencyModel(&simulator);
          spr.Run(&platform, 10);
          return {simulator.now_hours(), simulator.total_cost_usd(),
                  static_cast<double>(simulator.total_microtasks())};
        });
    util::TablePrinter table(
        "PeopleAge on a 5-worker simulated marketplace (paper live run: "
        "6.92 h, 10.56 USD)");
    table.SetHeader({"Metric", "This repo", "Paper (live)"});
    table.AddRow({"wall-clock hours", util::FormatDouble(mean[0], 2),
                  "6.92"});
    table.AddRow({"cost USD", util::FormatDouble(mean[1], 2), "10.56"});
    table.AddRow({"microtasks", util::FormatDouble(mean[2], 0), "10560"});
    table.Print();
    std::printf("\n");
  }

  // ---- All methods on Jester, 30-worker pool.
  {
    auto jester = data::MakeJesterLike(seed);
    const judgment::ComparisonOptions options =
        bench::DefaultComparisonOptions();
    util::TablePrinter table(
        "Jester, 30 simulated workers: wall-clock by method");
    table.SetHeader({"Method", "hours", "USD", "rounds"});
    auto methods = bench::ConfidenceAwareMethods(options);
    for (auto& method : methods) {
      const std::vector<double> mean = bench::AverageOver(
          runs, seed + 2,
          [&](int64_t, uint64_t run_seed) -> std::vector<double> {
            util::Rng rng(run_seed);
            crowd::SimulatorOptions sim_options;
            sim_options.num_workers = 30;
            crowd::WallClockSimulator simulator(sim_options,
                                                rng.NextUint64());
            crowd::CrowdPlatform platform(jester.get(), rng.NextUint64());
            platform.SetLatencyModel(&simulator);
            const core::TopKResult result =
                method->Run(&platform, bench::DefaultK());
            return {simulator.now_hours(), simulator.total_cost_usd(),
                    static_cast<double>(result.rounds)};
          });
      table.AddRow({method->name(), util::FormatDouble(mean[0], 2),
                    util::FormatDouble(mean[1], 2),
                    util::FormatDouble(mean[2], 0)});
    }
    table.Print();
    std::printf(
        "\nexpected: the wall-clock ordering mirrors the abstract rounds\n"
        "(HeapSort slowest by far), and wall-clock correlates with rounds\n"
        "rather than with cost\n");
  }
  return 0;
}
