// Figure 8: effect of k on TMC and query latency (IMDb, Book).
//
// Paper shape: SPR consistently cheapest (HeapSort slightly better only at
// very small k); HeapSort's latency is orders of magnitude above the
// parallel methods; QuickSelect's latency is comparable to SPR's but its
// TMC is the highest.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "core/infimum.h"

int main() {
  using namespace crowdtopk;
  const int64_t runs = util::BenchRuns(5);
  const uint64_t seed = util::BenchSeed();
  bench::PrintPreamble("Figure 8: effect of k (TMC and latency)", runs, seed);

  const judgment::ComparisonOptions options =
      bench::DefaultComparisonOptions();
  const std::vector<int64_t> ks = {1, 5, 10, 15, 20};

  for (const char* name : {"imdb", "book"}) {
    auto dataset = data::MakeByName(name, seed);
    util::TablePrinter tmc_table(dataset->name() + ": TMC vs k");
    util::TablePrinter lat_table(dataset->name() + ": latency (rounds) vs k");
    std::vector<std::string> header = {"Method"};
    for (int64_t k : ks) header.push_back("k=" + std::to_string(k));
    tmc_table.SetHeader(header);
    lat_table.SetHeader(header);

    auto methods = bench::ConfidenceAwareMethods(options);
    for (auto& method : methods) {
      std::vector<std::string> tmc_row = {method->name()};
      std::vector<std::string> lat_row = {method->name()};
      for (int64_t k : ks) {
        const bench::Averages averages =
            bench::AverageRuns(*dataset, method.get(), k, runs, seed + k);
        tmc_row.push_back(util::FormatDouble(averages.tmc, 0));
        lat_row.push_back(util::FormatDouble(averages.rounds, 0));
      }
      tmc_table.AddRow(tmc_row);
      lat_table.AddRow(lat_row);
    }
    std::vector<std::string> inf_tmc = {"Infimum"};
    std::vector<std::string> inf_lat = {"Infimum"};
    for (int64_t k : ks) {
      const core::InfimumEstimate inf =
          core::EstimateInfimum(*dataset, k, options, seed + 99 + k, 2);
      inf_tmc.push_back(util::FormatDouble(inf.tmc, 0));
      inf_lat.push_back(util::FormatDouble(inf.rounds, 0));
    }
    tmc_table.AddRow(inf_tmc);
    lat_table.AddRow(inf_lat);

    tmc_table.Print();
    std::printf("\n");
    lat_table.Print();
    std::printf("\n");
  }
  return 0;
}
