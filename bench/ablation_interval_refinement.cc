// Ablation (Section 7 future work, implemented): interval-based ranking
// refinement. After SPR's partition, the top-k candidates' order can be
// certified by buying *more reference judgments* until their confidence
// intervals around mu_{o,r} separate -- no direct candidate-vs-candidate
// comparisons needed. This bench measures how much certification a given
// refinement budget buys, and what it does to ranking quality.

#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "core/interval_ranking.h"
#include "core/partition.h"
#include "core/select_reference.h"
#include "metrics/ranking_metrics.h"

int main() {
  using namespace crowdtopk;
  const int64_t runs = util::BenchRuns(8);
  const uint64_t seed = util::BenchSeed();
  bench::PrintPreamble(
      "Ablation: interval-based ranking refinement (Jester, k=10)", runs,
      seed);

  auto jester = data::MakeJesterLike(seed);
  const int64_t k = 10;

  util::TablePrinter table("certification vs refinement budget");
  table.SetHeader({"extra budget", "certified pairs (of 9)", "Kendall tau",
                   "refinement cost"});
  for (int64_t budget : {0, 1000, 5000, 20000, 100000}) {
    // {certified pairs, Kendall tau, refinement cost} per run.
    const std::vector<double> mean = bench::AverageOver(
        runs, seed + 1,
        [&](int64_t, uint64_t run_seed) -> std::vector<double> {
          crowd::CrowdPlatform platform(jester.get(), run_seed);
          judgment::ComparisonCache cache(bench::DefaultComparisonOptions());
          std::vector<crowd::ItemId> items(jester->num_items());
          std::iota(items.begin(), items.end(), 0);
          const crowd::ItemId reference =
              core::SelectReference(items, k, 1.5, 100, &cache, &platform);
          const core::PartitionResult partition = core::Partition(
              items, k, reference, 4, &cache, &platform);
          // Top-k candidates: winners (trimmed/filled to k with ties).
          std::vector<crowd::ItemId> candidates = partition.winners;
          candidates.erase(
              std::remove(candidates.begin(), candidates.end(),
                          partition.reference),
              candidates.end());
          for (crowd::ItemId o : partition.ties) {
            if (static_cast<int64_t>(candidates.size()) >= k) break;
            candidates.push_back(o);
          }
          if (static_cast<int64_t>(candidates.size()) > k) {
            candidates.resize(k);
          }
          const core::IntervalRankingResult result = core::RefineByIntervals(
              candidates, partition.reference, budget, &cache, &platform);
          const double tau = result.ranked.size() >= 2
                                 ? metrics::KendallTau(*jester, result.ranked)
                                 : 0.0;
          return {static_cast<double>(result.certified_adjacent_pairs), tau,
                  static_cast<double>(result.refinement_cost)};
        });
    table.AddRow({std::to_string(budget), util::FormatDouble(mean[0], 1),
                  util::FormatDouble(mean[1], 3),
                  util::FormatDouble(mean[2], 0)});
  }
  table.Print();
  std::printf(
      "\nexpected: certified adjacent pairs and Kendall tau rise with the\n"
      "refinement budget; certification saturates once intervals separate\n");
  return 0;
}
