// Ablation (Section 3.1 extension): half-closed (one-sided) confidence
// intervals. Testing each direction at level alpha instead of alpha/2 keeps
// the error probability <= alpha (only one direction can be wrong) while the
// smaller critical value stops comparisons earlier; the paper notes the
// extension but evaluates only the symmetric interval.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"

int main() {
  using namespace crowdtopk;
  const int64_t runs = util::BenchRuns(8);
  const uint64_t seed = util::BenchSeed();
  bench::PrintPreamble(
      "Ablation: symmetric vs half-closed intervals (SPR, IMDb-like)", runs,
      seed);

  auto imdb = data::MakeImdbLike(seed);
  util::TablePrinter table("SPR: interval type");
  table.SetHeader({"Interval", "TMC", "NDCG", "Precision"});
  for (bool one_sided : {false, true}) {
    judgment::ComparisonOptions options = bench::DefaultComparisonOptions();
    options.one_sided = one_sided;
    core::SprOptions spr_options;
    spr_options.comparison = options;
    core::Spr spr(spr_options);
    const bench::Averages averages = bench::AverageRuns(
        *imdb, &spr, bench::DefaultK(), runs, seed + 1);
    table.AddRow({one_sided ? "half-closed" : "symmetric",
                  util::FormatDouble(averages.tmc, 0),
                  util::FormatDouble(averages.ndcg, 3),
                  util::FormatDouble(averages.precision, 3)});
  }
  table.Print();
  std::printf(
      "\nexpected: half-closed saves cost at (empirically) unchanged "
      "accuracy\n");
  return 0;
}
