// Ablation (Section 5.5): the microtask batch size eta trades monetary cost
// against latency. eta = 1 minimises TMC (stop exactly when the interval
// excludes 0) but pays one round per microtask; eta = B minimises rounds but
// overshoots every comparison to the full budget.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"

int main() {
  using namespace crowdtopk;
  const int64_t runs = util::BenchRuns(5);
  const uint64_t seed = util::BenchSeed();
  bench::PrintPreamble(
      "Ablation: batch size eta (SPR on IMDb-like; Section 5.5 trade-off)",
      runs, seed);

  auto imdb = data::MakeImdbLike(seed);
  util::TablePrinter table("SPR: cost/latency vs eta");
  table.SetHeader({"eta", "TMC", "Latency (rounds)", "NDCG"});
  for (int64_t eta : {5, 10, 30, 100, 300, 1000}) {
    judgment::ComparisonOptions options = bench::DefaultComparisonOptions();
    options.batch_size = eta;
    // The cold start I stays at 30 unless eta exceeds it.
    core::SprOptions spr_options;
    spr_options.comparison = options;
    core::Spr spr(spr_options);
    const bench::Averages averages =
        bench::AverageRuns(*imdb, &spr, bench::DefaultK(), runs, seed + eta);
    table.AddRow({std::to_string(eta), util::FormatDouble(averages.tmc, 0),
                  util::FormatDouble(averages.rounds, 0),
                  util::FormatDouble(averages.ndcg, 3)});
  }
  table.Print();
  std::printf(
      "\nexpected: TMC non-decreasing in eta, latency decreasing in eta\n");
  return 0;
}
