// Figures 18-21 (Appendix F): TMC and latency on the Jester and Photo
// datasets, varying k and the confidence level.
//
// Paper shape: same trends as IMDb/Book -- SPR cheapest (except k = 20 on
// Jester where QuickSelect's pruning aligns), HeapSort's latency dominant.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "core/infimum.h"

int main() {
  using namespace crowdtopk;
  const int64_t runs = util::BenchRuns(5);
  const uint64_t seed = util::BenchSeed();
  bench::PrintPreamble(
      "Figures 18-21: Jester & Photo scalability (TMC, latency)", runs, seed);

  for (const char* name : {"jester", "photo"}) {
    auto dataset = data::MakeByName(name, seed);

    // Vary k (Figs. 18, 19 top / 20, 21 top).
    {
      util::TablePrinter tmc_table(dataset->name() + ": TMC vs k");
      util::TablePrinter lat_table(dataset->name() + ": latency vs k");
      std::vector<std::string> header = {"Method", "k=1", "k=5", "k=10",
                                         "k=15", "k=20"};
      tmc_table.SetHeader(header);
      lat_table.SetHeader(header);
      auto methods =
          bench::ConfidenceAwareMethods(bench::DefaultComparisonOptions());
      for (auto& method : methods) {
        std::vector<std::string> tmc_row = {method->name()};
        std::vector<std::string> lat_row = {method->name()};
        for (int64_t k : {1, 5, 10, 15, 20}) {
          const bench::Averages averages =
              bench::AverageRuns(*dataset, method.get(), k, runs, seed + k);
          tmc_row.push_back(util::FormatDouble(averages.tmc, 0));
          lat_row.push_back(util::FormatDouble(averages.rounds, 0));
        }
        tmc_table.AddRow(tmc_row);
        lat_table.AddRow(lat_row);
      }
      std::vector<std::string> inf_tmc = {"Infimum"};
      std::vector<std::string> inf_lat = {"Infimum"};
      for (int64_t k : {1, 5, 10, 15, 20}) {
        const core::InfimumEstimate inf = core::EstimateInfimum(
            *dataset, k, bench::DefaultComparisonOptions(), seed + 31 * k, 2);
        inf_tmc.push_back(util::FormatDouble(inf.tmc, 0));
        inf_lat.push_back(util::FormatDouble(inf.rounds, 0));
      }
      tmc_table.AddRow(inf_tmc);
      lat_table.AddRow(inf_lat);
      tmc_table.Print();
      std::printf("\n");
      lat_table.Print();
      std::printf("\n");
    }

    // Vary confidence level (Figs. 18, 19 bottom / 20, 21 bottom).
    {
      util::TablePrinter tmc_table(dataset->name() + ": TMC vs confidence");
      util::TablePrinter lat_table(dataset->name() +
                                   ": latency vs confidence");
      std::vector<std::string> header = {"Method", "0.80", "0.85", "0.90",
                                         "0.95", "0.98"};
      tmc_table.SetHeader(header);
      lat_table.SetHeader(header);
      std::vector<std::vector<std::string>> tmc_rows(4), lat_rows(4);
      bool names_set = false;
      for (double confidence : {0.80, 0.85, 0.90, 0.95, 0.98}) {
        judgment::ComparisonOptions options =
            bench::DefaultComparisonOptions();
        options.alpha = 1.0 - confidence;
        auto methods = bench::ConfidenceAwareMethods(options);
        for (size_t m = 0; m < methods.size(); ++m) {
          if (!names_set) {
            tmc_rows[m].push_back(methods[m]->name());
            lat_rows[m].push_back(methods[m]->name());
          }
          const bench::Averages averages = bench::AverageRuns(
              *dataset, methods[m].get(), bench::DefaultK(), runs,
              seed + static_cast<int>(confidence * 100));
          tmc_rows[m].push_back(util::FormatDouble(averages.tmc, 0));
          lat_rows[m].push_back(util::FormatDouble(averages.rounds, 0));
        }
        names_set = true;
      }
      for (auto& row : tmc_rows) tmc_table.AddRow(row);
      for (auto& row : lat_rows) lat_table.AddRow(row);
      tmc_table.Print();
      std::printf("\n");
      lat_table.Print();
      std::printf("\n");
    }
  }
  return 0;
}
