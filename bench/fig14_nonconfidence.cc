// Figure 14: comparison against non-confidence-aware heuristics (Section
// 6.5): CrowdBT [9] and Hybrid [26], plus the HybridSPR combination, on
// IMDb and Book. CrowdBT and Hybrid get exactly SPR's measured TMC as their
// budget.
//
// Paper shape: CrowdBT trails badly (the budget cannot fund enough binary
// votes for a good BTL fit); Hybrid and HybridSPR score at or slightly above
// SPR (the filter phase exploits the graded ground truth); HybridSPR
// consistently beats Hybrid and saves ~10% cost versus SPR.

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/crowd_bt.h"
#include "baselines/hybrid.h"
#include "bench/harness.h"

int main() {
  using namespace crowdtopk;
  const int64_t runs = util::BenchRuns(5);
  const uint64_t seed = util::BenchSeed();
  bench::PrintPreamble("Figure 14: non-confidence-aware methods", runs, seed);

  const judgment::ComparisonOptions options =
      bench::DefaultComparisonOptions();
  const int64_t k = bench::DefaultK();

  for (const char* name : {"imdb", "book"}) {
    auto dataset = data::MakeByName(name, seed);

    // SPR first: it sets the budget for the fixed-budget heuristics.
    core::SprOptions spr_options;
    spr_options.comparison = options;
    core::Spr spr(spr_options);
    const bench::Averages spr_avg =
        bench::AverageRuns(*dataset, &spr, k, runs, seed + 1);
    const int64_t budget = static_cast<int64_t>(spr_avg.tmc);

    baselines::CrowdBt::Options bt_options;
    bt_options.total_budget = budget;
    baselines::CrowdBt crowd_bt(bt_options);
    const bench::Averages bt_avg =
        bench::AverageRuns(*dataset, &crowd_bt, k, runs, seed + 2);

    baselines::Hybrid::Options hybrid_options;
    hybrid_options.total_budget = budget;
    baselines::Hybrid hybrid(hybrid_options);
    const bench::Averages hybrid_avg =
        bench::AverageRuns(*dataset, &hybrid, k, runs, seed + 3);

    baselines::HybridSpr::Options hybrid_spr_options;
    // "HybridSPR employs the filtering phase of HYBRID": same grading depth
    // as Hybrid's filter (half the SPR budget spread over all items).
    hybrid_spr_options.grades_per_item = std::max<int64_t>(
        1, budget / 2 / dataset->num_items());
    hybrid_spr_options.spr = spr_options;
    baselines::HybridSpr hybrid_spr(hybrid_spr_options);
    const bench::Averages hs_avg =
        bench::AverageRuns(*dataset, &hybrid_spr, k, runs, seed + 4);

    util::TablePrinter table(dataset->name() +
                             ": NDCG and cost (budget = SPR's TMC)");
    table.SetHeader({"Method", "NDCG", "TMC"});
    table.AddRow({"SPR", util::FormatDouble(spr_avg.ndcg, 3),
                  util::FormatDouble(spr_avg.tmc, 0)});
    table.AddRow({"CrowdBT", util::FormatDouble(bt_avg.ndcg, 3),
                  util::FormatDouble(bt_avg.tmc, 0)});
    table.AddRow({"Hybrid", util::FormatDouble(hybrid_avg.ndcg, 3),
                  util::FormatDouble(hybrid_avg.tmc, 0)});
    table.AddRow({"HybridSPR", util::FormatDouble(hs_avg.ndcg, 3),
                  util::FormatDouble(hs_avg.tmc, 0)});
    table.Print();
    std::printf("\n");
  }
  return 0;
}
