// Ablation (Section 5.1 / problem (2)): how much to spend on selecting the
// reference. Sweeps the selection comparison budget (fraction of N) and the
// per-pair budget of selection comparisons (in cold-start batches).
//
// The design point called out in DESIGN.md: selection comparisons between
// group maxima pit top items against each other, so giving them the full
// per-pair budget B lets the selection phase dominate the query; one
// cold-start batch per selection pair is enough because selection errors
// only cost efficiency (Section 5.4).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"

int main() {
  using namespace crowdtopk;
  const int64_t runs = util::BenchRuns(5);
  const uint64_t seed = util::BenchSeed();
  bench::PrintPreamble(
      "Ablation: reference-selection budget (SPR on IMDb-like)", runs, seed);

  auto imdb = data::MakeImdbLike(seed);

  {
    util::TablePrinter table(
        "Selection comparison budget (fraction of N), per-pair = 1 batch");
    table.SetHeader({"fraction", "TMC", "NDCG"});
    for (double fraction : {0.1, 0.33, 1.0, 2.0}) {
      core::SprOptions spr_options;
      spr_options.comparison = bench::DefaultComparisonOptions();
      spr_options.selection_budget_fraction = fraction;
      core::Spr spr(spr_options);
      const bench::Averages averages = bench::AverageRuns(
          *imdb, &spr, bench::DefaultK(), runs, seed + 1);
      table.AddRow({util::FormatDouble(fraction, 2),
                    util::FormatDouble(averages.tmc, 0),
                    util::FormatDouble(averages.ndcg, 3)});
    }
    table.Print();
    std::printf("\n");
  }
  {
    util::TablePrinter table(
        "Per-pair budget of selection comparisons (batches of I), "
        "fraction = 1.0");
    table.SetHeader({"batches", "TMC", "NDCG"});
    for (int64_t batches : {1, 2, 4, 33}) {  // 33 batches ~ full B = 1000
      core::SprOptions spr_options;
      spr_options.comparison = bench::DefaultComparisonOptions();
      spr_options.selection_budget_per_pair_batches = batches;
      core::Spr spr(spr_options);
      const bench::Averages averages = bench::AverageRuns(
          *imdb, &spr, bench::DefaultK(), runs, seed + 2);
      table.AddRow({std::to_string(batches),
                    util::FormatDouble(averages.tmc, 0),
                    util::FormatDouble(averages.ndcg, 3)});
    }
    table.Print();
  }
  return 0;
}
