// Figure 10: effect of the confidence level 1-alpha on TMC and latency
// (IMDb, Book).
//
// Paper shape: every method's cost and latency rise monotonically with the
// confidence level; SPR stays the cheapest with latency at or below
// QuickSelect's.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "core/infimum.h"

int main() {
  using namespace crowdtopk;
  const int64_t runs = util::BenchRuns(5);
  const uint64_t seed = util::BenchSeed();
  bench::PrintPreamble("Figure 10: effect of the confidence level", runs,
                       seed);

  const std::vector<double> confidences = {0.80, 0.85, 0.90, 0.95, 0.98};

  for (const char* name : {"imdb", "book"}) {
    auto dataset = data::MakeByName(name, seed);
    util::TablePrinter tmc_table(dataset->name() + ": TMC vs confidence");
    util::TablePrinter lat_table(dataset->name() + ": latency vs confidence");
    std::vector<std::string> header = {"Method"};
    for (double c : confidences) header.push_back(util::FormatDouble(c, 2));
    tmc_table.SetHeader(header);
    lat_table.SetHeader(header);

    std::vector<std::vector<std::string>> tmc_rows(4), lat_rows(4);
    std::vector<std::string> inf_tmc = {"Infimum"};
    std::vector<std::string> inf_lat = {"Infimum"};
    bool names_set = false;
    for (double confidence : confidences) {
      judgment::ComparisonOptions options =
          bench::DefaultComparisonOptions();
      options.alpha = 1.0 - confidence;
      auto methods = bench::ConfidenceAwareMethods(options);
      for (size_t m = 0; m < methods.size(); ++m) {
        if (!names_set) {
          tmc_rows[m].push_back(methods[m]->name());
          lat_rows[m].push_back(methods[m]->name());
        }
        const bench::Averages averages =
            bench::AverageRuns(*dataset, methods[m].get(), bench::DefaultK(),
                               runs, seed + static_cast<int>(confidence * 100));
        tmc_rows[m].push_back(util::FormatDouble(averages.tmc, 0));
        lat_rows[m].push_back(util::FormatDouble(averages.rounds, 0));
      }
      names_set = true;
      const core::InfimumEstimate inf = core::EstimateInfimum(
          *dataset, bench::DefaultK(), options,
          seed + static_cast<int>(confidence * 1000), 2);
      inf_tmc.push_back(util::FormatDouble(inf.tmc, 0));
      inf_lat.push_back(util::FormatDouble(inf.rounds, 0));
    }
    for (auto& row : tmc_rows) tmc_table.AddRow(row);
    tmc_table.AddRow(inf_tmc);
    for (auto& row : lat_rows) lat_table.AddRow(row);
    lat_table.AddRow(inf_lat);
    tmc_table.Print();
    std::printf("\n");
    lat_table.Print();
    std::printf("\n");
  }
  return 0;
}
